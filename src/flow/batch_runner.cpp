#include "flow/batch_runner.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "benchgen/registry.hpp"
#include "flow/disk_cache.hpp"
#include "opt/partition.hpp"
#include "util/hash.hpp"
#include "util/trace.hpp"

namespace xsfq::flow {

std::optional<unsigned> parse_thread_count(const char* arg) {
  if (arg == nullptr || *arg == '\0') return std::nullopt;
  char* end = nullptr;
  const long n = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || n < 0 || n > 256) return std::nullopt;
  return static_cast<unsigned>(n);
}

std::size_t batch_report::num_ok() const {
  std::size_t n = 0;
  for (const auto& e : entries) {
    if (e.ok) ++n;
  }
  return n;
}

std::size_t batch_report::num_failed() const {
  return entries.size() - num_ok();
}

std::vector<const flow_result*> batch_report::ok_results() const {
  std::vector<const flow_result*> out;
  out.reserve(entries.size());
  for (const auto& e : entries) {
    if (e.ok) out.push_back(&e.result);
  }
  return out;
}

batch_summary summarize(const batch_report& report) {
  batch_summary s;
  double log_sum = 0.0;
  double log_sum_clock = 0.0;
  std::size_t ratio_count = 0;
  for (const auto& e : report.entries) {
    if (!e.ok) continue;
    const auto& r = e.result;
    ++s.circuits;
    s.aig_gates += r.optimized.num_gates();
    s.xsfq_jj += r.mapped.stats.jj;
    s.rsfq_jj += r.baseline.jj_without_clock;
    s.rsfq_jj_clock += r.baseline.jj_with_clock;
    if (r.mapped.stats.jj > 0 && r.baseline.jj_without_clock > 0) {
      log_sum += std::log(static_cast<double>(r.baseline.jj_without_clock) /
                          static_cast<double>(r.mapped.stats.jj));
      log_sum_clock +=
          std::log(static_cast<double>(r.baseline.jj_with_clock) /
                   static_cast<double>(r.mapped.stats.jj));
      ++ratio_count;
    }
  }
  if (ratio_count > 0) {
    const double n = static_cast<double>(ratio_count);
    s.geomean_savings = std::exp(log_sum / n);
    s.geomean_savings_clock = std::exp(log_sum_clock / n);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Worker pool (per-worker deques + stealing) and cross-run result cache.
// ---------------------------------------------------------------------------

struct batch_runner::impl {
  // ----- work-stealing pool -------------------------------------------------

  unsigned num_threads = 1;  ///< mirror of the owner's worker count

  /// One deque per worker; the owner pops the front, thieves pop the back.
  struct worker_queue {
    std::mutex mutex;
    std::deque<std::function<void()>> jobs;
  };

  std::vector<std::unique_ptr<worker_queue>> queues;
  std::mutex mutex;  ///< guards the sleep/wake protocol and shutdown flag
  std::condition_variable work_ready;
  std::condition_variable batch_done;
  std::atomic<std::size_t> queued{0};     ///< jobs sitting in some deque
  std::atomic<std::size_t> in_flight{0};  ///< queued + currently executing
  std::atomic<std::uint64_t> steal_count{0};
  bool shutting_down = false;
  std::vector<std::thread> workers;
  /// Round-robin cursor; atomic because enqueue() submits from arbitrary
  /// threads concurrently (batch run() still submits from one thread).
  std::atomic<std::size_t> next_queue{0};

  bool try_pop(std::size_t self, std::function<void()>& job) {
    {
      worker_queue& own = *queues[self];
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.jobs.empty()) {
        job = std::move(own.jobs.front());
        own.jobs.pop_front();
        queued.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    for (std::size_t offset = 1; offset < queues.size(); ++offset) {
      worker_queue& victim = *queues[(self + offset) % queues.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.jobs.empty()) {
        job = std::move(victim.jobs.back());
        victim.jobs.pop_back();
        queued.fetch_sub(1, std::memory_order_relaxed);
        steal_count.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void worker_loop(std::size_t self) {
    for (;;) {
      std::function<void()> job;
      if (try_pop(self, job)) {
        job();
        if (in_flight.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> lock(mutex);
          batch_done.notify_all();
        }
        continue;
      }
      std::unique_lock<std::mutex> lock(mutex);
      work_ready.wait(lock, [this] {
        return shutting_down || queued.load(std::memory_order_relaxed) > 0;
      });
      if (shutting_down && queued.load(std::memory_order_relaxed) == 0) {
        return;
      }
    }
  }

  void submit(std::function<void()> job) {
    in_flight.fetch_add(1);
    {
      const std::size_t slot =
          next_queue.fetch_add(1, std::memory_order_relaxed) % queues.size();
      worker_queue& q = *queues[slot];
      std::lock_guard<std::mutex> lock(q.mutex);
      // Increment-then-push inside the queue lock: a pop (which holds the
      // same lock) always observes the increment before the job, so
      // `queued` can never underflow, and a worker woken by a momentarily
      // early increment serializes on this lock and finds the job.
      queued.fetch_add(1, std::memory_order_relaxed);
      q.jobs.push_back(std::move(job));
    }
    // Empty critical section pairs the increment with the workers'
    // check-then-wait, closing the lost-wakeup window.
    { std::lock_guard<std::mutex> lock(mutex); }
    work_ready.notify_one();
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex);
    batch_done.wait(lock, [this] { return in_flight.load() == 0; });
  }

  // ----- intra-flow subtasks (caller participates) --------------------------

  /// One run_subtasks invocation: tasks are claimed through an atomic cursor
  /// by pool workers *and* the submitting thread, so the group always drains
  /// even on a fully loaded (or single-worker) pool.
  struct subtask_group {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex m;
    std::condition_variable cv;

    /// Claims and runs one task; false when none are left to claim.
    bool run_next() {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return false;
      tasks[i]();
      if (done.fetch_add(1) + 1 == tasks.size()) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_all();
      }
      return true;
    }
  };

  void run_subtasks(std::vector<std::function<void()>> tasks) {
    if (tasks.empty()) return;
    if (tasks.size() == 1 || num_threads <= 1) {
      // No sibling worker could help; skip the group machinery entirely.
      for (auto& task : tasks) task();
      return;
    }
    auto group = std::make_shared<subtask_group>();
    group->tasks = std::move(tasks);
    const std::size_t n = group->tasks.size();
    // Offer at most one claim job per *other* worker (more thieves than
    // workers just adds wakeups); each helper drains the cursor until the
    // group is empty, so surplus tasks spread over however many workers are
    // actually free, and the caller claims whatever nobody picked up.
    const std::size_t helpers = std::min<std::size_t>(n - 1, num_threads - 1);
    for (std::size_t i = 0; i < helpers; ++i) {
      submit([group] {
        while (group->run_next()) {
        }
      });
    }
    while (group->run_next()) {
    }
    std::unique_lock<std::mutex> lock(group->m);
    group->cv.wait(lock, [&] { return group->done.load() == n; });
  }

  /// Copies `options` with the pool installed as the partitioned-optimize
  /// executor (when requested and not caller-supplied) and the runner's
  /// region cache installed for grain-mode flows.  Neither joins the
  /// fingerprint — both change wall-clock only — so cache keys are
  /// unaffected.
  flow_options with_pool_executor(const flow_options& options) {
    flow_options out = options;
    if (out.opt.flow_jobs > 1 && !out.opt.executor) {
      out.opt.executor = [this](std::vector<std::function<void()>>&& tasks) {
        run_subtasks(std::move(tasks));
      };
    }
    if (out.opt.partition_grain > 0 && out.opt.regions == nullptr &&
        cache_enabled.load(std::memory_order_relaxed)) {
      out.opt.regions = &region_tier;
    }
    return out;
  }

  // ----- cross-run result cache --------------------------------------------

  struct cache_key {
    std::uint64_t circuit = 0;  ///< aig::content_hash()
    std::uint64_t options = 0;  ///< flow::fingerprint(...)
    bool operator==(const cache_key&) const = default;
  };
  struct cache_key_hash {
    std::size_t operator()(const cache_key& k) const {
      return static_cast<std::size_t>(k.circuit ^
                                      (k.options * 0x9E3779B97F4A7C15ull));
    }
  };
  /// Cached outcome of one optimize stage.
  struct opt_entry {
    aig network;
    optimize_stats stats;
  };

  static constexpr std::size_t max_full_entries = 64;
  static constexpr std::size_t max_opt_entries = 128;

  // Entries are immutable shared_ptrs so the global lock only covers a map
  // find plus a refcount bump — deep copies (whole AIGs) happen outside it.
  // The optimize tier stores shared_futures: the first requester of a key
  // becomes its producer, concurrent requesters wait on the future instead
  // of re-running the stage (no thundering herd when one circuit appears
  // under several mapping options in the same batch).
  using opt_future = std::shared_future<std::shared_ptr<const opt_entry>>;
  using opt_promise = std::promise<std::shared_ptr<const opt_entry>>;

  mutable std::mutex cache_mutex;
  std::unordered_map<cache_key, std::shared_ptr<const flow_result>,
                     cache_key_hash>
      full_cache;
  std::deque<cache_key> full_order;  ///< FIFO eviction
  std::unordered_map<cache_key, opt_future, cache_key_hash> opt_cache;
  std::deque<cache_key> opt_order;
  /// Disk-persistent tier behind the in-memory full cache (set_disk_cache);
  /// owns its own mutex, so lookups never hold cache_mutex across file IO.
  std::unique_ptr<disk_result_cache> disk;
  /// Registry generators are deterministic for the process lifetime, so a
  /// benchmark's content hash (and gate count, which keys the effective
  /// partition clamp) is memoized: repeat full-cache hits skip the
  /// (re)generation entirely.  Bounded by the registry size.
  std::unordered_map<std::string, std::pair<std::uint64_t, std::size_t>>
      hash_memo;
  std::atomic<bool> cache_enabled{true};
  std::atomic<std::uint64_t> full_hits{0};
  std::atomic<std::uint64_t> full_misses{0};
  std::atomic<std::uint64_t> opt_hits{0};
  std::atomic<std::uint64_t> opt_misses{0};
  std::atomic<std::uint64_t> eco_patches{0};

  /// Optimized-region tier (opt/partition.hpp), installed into every
  /// grain-mode flow: the engine of ECO resynthesis.
  region_cache region_tier;

  /// Retained-network tier: the serving entry points keep the networks they
  /// ran, keyed by content hash, so a synth_delta request can replay its
  /// edit script onto the base without shipping or re-parsing the base
  /// circuit.  Sized by traffic, not count: an LRU under a byte budget
  /// (aig::memory_bytes per entry), so a burst of tiny interactive sessions
  /// is not evicted by one huge batch circuit the way a fixed count was.
  struct retained_entry {
    std::shared_ptr<const aig> network;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru_pos;  ///< position in retained_lru
  };
  std::unordered_map<std::uint64_t, retained_entry> retained;
  std::list<std::uint64_t> retained_lru;  ///< front = most recently used
  std::size_t retained_budget = 256u << 20;
  std::size_t retained_bytes = 0;
  std::uint64_t retained_evictions = 0;

  /// Drops least-recently-used entries until the tier fits the budget.
  /// Always keeps the most recent entry even when it alone exceeds the
  /// budget — evicting the base a session is actively editing would turn
  /// every delta into a full rebuild.  Caller holds cache_mutex.
  void evict_retained_locked() {
    while (retained_bytes > retained_budget && retained.size() > 1) {
      const std::uint64_t victim = retained_lru.back();
      retained_lru.pop_back();
      const auto it = retained.find(victim);
      retained_bytes -= it->second.bytes;
      retained.erase(it);
      ++retained_evictions;
    }
  }

  void retain_network(std::uint64_t content_hash, const aig& network) {
    auto copy = std::make_shared<const aig>(network);  // outside the lock
    const std::size_t bytes = copy->memory_bytes();
    std::lock_guard<std::mutex> lock(cache_mutex);
    const auto it = retained.find(content_hash);
    if (it != retained.end()) {
      // Already retained: just touch (refresh the LRU position).
      retained_lru.splice(retained_lru.begin(), retained_lru,
                          it->second.lru_pos);
      return;
    }
    retained_lru.push_front(content_hash);
    retained.emplace(content_hash,
                     retained_entry{std::move(copy), bytes,
                                    retained_lru.begin()});
    retained_bytes += bytes;
    evict_retained_locked();
  }

  std::shared_ptr<const flow_result> lookup_full(const cache_key& key) {
    std::lock_guard<std::mutex> lock(cache_mutex);
    const auto it = full_cache.find(key);
    return it == full_cache.end() ? nullptr : it->second;
  }

  void store_full(const cache_key& key,
                  std::shared_ptr<const flow_result> entry, bool persist) {
    {
      std::lock_guard<std::mutex> lock(cache_mutex);
      if (!full_cache.emplace(key, entry).second) {
        return;  // racer won; it also handled persistence
      }
      full_order.push_back(key);
      if (full_order.size() > max_full_entries) {
        full_cache.erase(full_order.front());
        full_order.pop_front();
      }
    }
    // Disk writes happen outside cache_mutex (the disk tier has its own
    // lock); entries loaded *from* disk pass persist=false.
    if (persist && disk) {
      const std::uint64_t store_start = trace::now_us();
      disk->store(key.circuit, key.options, *entry);
      trace::record("cache.disk_store", store_start,
                    trace::now_us() - store_start);
    }
  }

  /// Outcome of claiming an optimize-cache slot: a consumer gets the future
  /// (ready, or in flight on another worker); the first requester gets the
  /// promise too and must fulfil it.
  struct opt_claim {
    opt_future future;
    std::shared_ptr<opt_promise> promise;  ///< set iff this caller produces
  };

  opt_claim claim_opt(const cache_key& key) {
    std::lock_guard<std::mutex> lock(cache_mutex);
    const auto it = opt_cache.find(key);
    if (it != opt_cache.end()) return {it->second, nullptr};
    auto promise = std::make_shared<opt_promise>();
    opt_future future = promise->get_future().share();
    opt_cache.emplace(key, future);
    opt_order.push_back(key);
    if (opt_order.size() > max_opt_entries) {
      opt_cache.erase(opt_order.front());
      opt_order.pop_front();
    }
    return {std::move(future), std::move(promise)};
  }

  /// Drops a slot whose producer failed so later runs retry the stage.
  void abandon_opt(const cache_key& key) {
    std::lock_guard<std::mutex> lock(cache_mutex);
    opt_cache.erase(key);
    for (auto it = opt_order.begin(); it != opt_order.end(); ++it) {
      if (*it == key) {
        opt_order.erase(it);
        break;
      }
    }
  }

  /// Normalizes options for fingerprinting.  Cache keys fingerprint the
  /// *effective* partition count: small circuits clamp flow_jobs down (often
  /// to 1), so requests whose clamp coincides produce byte-identical results
  /// and must share one entry.  Grain mode skips the clamp — the grain alone
  /// is the partition shape and flow_jobs never joins its fingerprint.
  static flow_options keyed_options(std::size_t num_gates,
                                    const flow_options& options) {
    flow_options keyed = options;
    if (keyed.opt.partition_grain == 0) {
      keyed.opt.flow_jobs =
          effective_partition_count(num_gates, options.opt.flow_jobs);
    }
    return keyed;
  }

  /// The circuit name joins the circuit half of the key: name-derived
  /// artifacts (result.name, the emit stage's default Verilog module
  /// header) must never be served across two names that happen to
  /// generate content-identical circuits.
  static cache_key full_key_for(std::uint64_t circuit_hash,
                                const std::string& name,
                                const flow_options& keyed) {
    return {hash_mix_str(circuit_hash, name), fingerprint(keyed)};
  }

  /// Replays a cached result's stage timings as from_cache progress events,
  /// substituting this run's (re)generate cost for the cached one.
  static void replay_timings(const flow_result& cached, double generate_ms,
                             const stage_observer& observer) {
    if (!observer) return;
    for (std::size_t i = 0; i < cached.timings.size(); ++i) {
      const stage_timing& t = cached.timings[i];
      const bool is_generate = i == 0 && t.stage == "generate";
      observer({t.stage, i, cached.timings.size(),
                is_generate ? generate_ms : t.ms, t.counters,
                /*from_cache=*/true});
    }
  }

  /// Materializes a cache hit for the by-value entry points: deep-copies,
  /// restores the caller's name, and charges this run's (re)generate cost.
  flow_result finish_hit(const flow_result& cached, const std::string& name,
                         double generate_ms) {
    flow_result r = cached;  // deep copy outside the cache lock
    r.name = name;
    // Charge this run's (re)generate cost; downstream stage timings are
    // the cached run's measurements.
    if (!r.timings.empty() && r.timings.front().stage == "generate") {
      r.total_ms += generate_ms - r.timings.front().ms;
      r.timings.front().ms = generate_ms;
    }
    return r;
  }

  /// Outcome of the shared-ownership core: the (immutable) cache entry plus
  /// whether it was served from a cache tier.  Hits hand back the stored
  /// entry itself — zero copies; the by-value wrappers copy, the serving
  /// delta path (latency-critical) reads through the pointer.
  struct cached_outcome {
    std::shared_ptr<const flow_result> entry;
    bool hit = false;
  };

  /// The canned paper flow for one entry with every cache tier applied:
  /// in-memory full results, the disk-persistent tier, and the shared-future
  /// optimize tier.  `network` may arrive empty for registry entries whose
  /// content hash is memoized; `generate` then rebuilds it on demand.
  cached_outcome run_cached_core(const std::string& name,
                                 std::uint64_t circuit_hash,
                                 std::size_t num_gates,
                                 const flow_options& options,
                                 std::optional<aig> network,
                                 double generate_ms,
                                 const std::function<aig()>& generate,
                                 const stage_observer& observer) {
    using clock = std::chrono::steady_clock;
    const flow_options keyed = keyed_options(num_gates, options);
    const cache_key full_key = full_key_for(circuit_hash, name, keyed);
    const std::uint64_t mem_start = trace::now_us();
    if (auto cached = lookup_full(full_key)) {
      full_hits.fetch_add(1, std::memory_order_relaxed);
      trace::record("cache.full_hit", mem_start, trace::now_us() - mem_start);
      replay_timings(*cached, generate_ms, observer);
      return {std::move(cached), /*hit=*/true};
    }
    full_misses.fetch_add(1, std::memory_order_relaxed);
    if (disk) {
      const std::uint64_t disk_start = trace::now_us();
      auto loaded = disk->load(full_key.circuit, full_key.options);
      trace::record(loaded ? "cache.disk_hit" : "cache.disk_miss", disk_start,
                    trace::now_us() - disk_start);
      if (loaded) {
        auto entry =
            std::make_shared<const flow_result>(*std::move(loaded));
        store_full(full_key, entry, /*persist=*/false);
        replay_timings(*entry, generate_ms, observer);
        return {std::move(entry), /*hit=*/true};
      }
    }
    if (!network) {  // hash came from the memo or the caller
      const auto start = clock::now();
      network = generate();
      const std::chrono::duration<double, std::milli> elapsed =
          clock::now() - start;
      generate_ms += elapsed.count();
    }

    flow f("synthesis");
    f.add_stage(stages::preset(std::move(*network), name));
    if (options.run_optimize) {
      const cache_key opt_key{circuit_hash, fingerprint(keyed.opt)};
      // Claim happens when the stage *runs* (on a worker), so whichever
      // entry gets there first produces and everyone else — ready or still
      // in flight on a sibling worker — consumes the same result.
      f.add_stage("optimize", [this, opt_key,
                               params = options.opt](flow_context& ctx) {
        opt_claim claim = claim_opt(opt_key);
        if (claim.promise) {  // producer: run the stage and publish
          opt_misses.fetch_add(1, std::memory_order_relaxed);
          try {
            optimize_stats st;
            ctx.network = xsfq::optimize(ctx.network, params, &st);
            ctx.opt = st;
            apply_opt_counters(ctx.counters, st.work);
            claim.promise->set_value(std::make_shared<const opt_entry>(
                opt_entry{ctx.network, st}));
          } catch (...) {
            claim.promise->set_exception(std::current_exception());
            abandon_opt(opt_key);  // let later runs retry
            throw;
          }
        } else {  // consumer: ready result, or wait for the producer
          opt_hits.fetch_add(1, std::memory_order_relaxed);
          const auto entry = claim.future.get();  // rethrows producer errors
          ctx.network = entry->network;
          ctx.opt = entry->stats;
          apply_opt_counters(ctx.counters, entry->stats.work);
        }
      });
    }
    flow_options tail = options;
    tail.run_optimize = false;  // handled above
    f.add_stages(make_synthesis_flow(tail));

    // The preset stage only copies the pre-built network; fold the actual
    // generation cost back into its timing slot.
    flow_result result = f.run(observer);
    if (!result.timings.empty() && result.timings.front().stage == "generate") {
      result.timings.front().ms += generate_ms;
      result.total_ms += generate_ms;
    }
    auto entry = std::make_shared<const flow_result>(std::move(result));
    store_full(full_key, entry, /*persist=*/true);
    return {std::move(entry), /*hit=*/false};
  }

  /// Registry entry point: the benchmark generator is deterministic for the
  /// process lifetime, so its content hash is memoized and repeat hits skip
  /// the (re)generation entirely.
  flow_result run_cached_flow(const std::string& name,
                              const flow_options& caller_options) {
    const flow_options options = with_pool_executor(caller_options);
    if (!cache_enabled.load(std::memory_order_relaxed)) {
      return run_flow(name, options);
    }
    using clock = std::chrono::steady_clock;
    double generate_ms = 0.0;
    std::optional<aig> network;

    std::uint64_t circuit_hash = 0;
    std::size_t num_gates = 0;
    bool have_hash = false;
    {
      std::lock_guard<std::mutex> lock(cache_mutex);
      const auto it = hash_memo.find(name);
      if (it != hash_memo.end()) {
        circuit_hash = it->second.first;
        num_gates = it->second.second;
        have_hash = true;
      }
    }
    if (!have_hash) {
      const auto start = clock::now();
      network = benchgen::make_benchmark(name);
      const std::chrono::duration<double, std::milli> elapsed =
          clock::now() - start;
      generate_ms += elapsed.count();
      circuit_hash = network->content_hash();
      num_gates = network->num_gates();
      std::lock_guard<std::mutex> lock(cache_mutex);
      hash_memo.emplace(name, std::make_pair(circuit_hash, num_gates));
    }
    return materialize(
        run_cached_core(name, circuit_hash, num_gates, options,
                        std::move(network), generate_ms,
                        [&name] { return benchgen::make_benchmark(name); },
                        {}),
        name, generate_ms);
  }

  /// By-value materialization of a core outcome.  Hits pay the same deep
  /// copy finish_hit always made; misses pay one copy out of the stored
  /// entry — exactly the copy store_full used to make, just relocated.
  flow_result materialize(cached_outcome out, const std::string& name,
                          double generate_ms) {
    if (out.hit) return finish_hit(*out.entry, name, generate_ms);
    return *out.entry;
  }

  /// Serving entry point: an already-built network (parsed from a request
  /// payload or a corpus file) with optional per-stage progress streaming.
  /// Shared-ownership return — the serving delta path renders straight out
  /// of the cache entry, so hit and miss alike move zero flow_results.
  std::shared_ptr<const flow_result> run_cached_network_shared(
      aig network, const std::string& name,
      const flow_options& caller_options, const stage_observer& observer) {
    const flow_options options = with_pool_executor(caller_options);
    if (!cache_enabled.load(std::memory_order_relaxed)) {
      flow f("synthesis");
      f.add_stage(stages::preset(std::move(network), name));
      f.add_stages(make_synthesis_flow(options));
      return std::make_shared<const flow_result>(f.run(observer));
    }
    const std::uint64_t circuit_hash = network.content_hash();
    const std::size_t num_gates = network.num_gates();
    // Every served network is retained (byte-budgeted LRU) so a later
    // synth_delta request can name it by content hash.
    retain_network(circuit_hash, network);
    return run_cached_core(name, circuit_hash, num_gates, options,
                           std::move(network), 0.0, {}, observer)
        .entry;
  }

  flow_result run_cached_network(aig network, const std::string& name,
                                 const flow_options& caller_options,
                                 const stage_observer& observer) {
    const flow_options options = with_pool_executor(caller_options);
    if (!cache_enabled.load(std::memory_order_relaxed)) {
      flow f("synthesis");
      f.add_stage(stages::preset(std::move(network), name));
      f.add_stages(make_synthesis_flow(options));
      return f.run(observer);
    }
    const std::uint64_t circuit_hash = network.content_hash();
    const std::size_t num_gates = network.num_gates();
    retain_network(circuit_hash, network);
    return materialize(run_cached_core(name, circuit_hash, num_gates, options,
                                       std::move(network), 0.0, {}, observer),
                       name, 0.0);
  }

  /// Every tier bypassed: the ECO force-full comparator.  The pool executor
  /// is still installed when asked for (parallelism never changes bytes),
  /// but the region cache is explicitly NOT.
  flow_result run_uncached_network(aig network, const std::string& name,
                                   const flow_options& caller_options,
                                   const stage_observer& observer) {
    flow_options options = caller_options;
    options.opt.regions = nullptr;
    if (options.opt.flow_jobs > 1 && !options.opt.executor) {
      options.opt.executor =
          [this](std::vector<std::function<void()>>&& tasks) {
            run_subtasks(std::move(tasks));
          };
    }
    flow f("synthesis");
    f.add_stage(stages::preset(std::move(network), name));
    f.add_stages(make_synthesis_flow(options));
    return f.run(observer);
  }
};

batch_runner::batch_runner(unsigned num_threads) : impl_(new impl) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  impl_->num_threads = num_threads;
  impl_->queues.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    impl_->queues.push_back(std::make_unique<impl::worker_queue>());
  }
  impl_->workers.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
  }
}

batch_runner::~batch_runner() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

std::uint64_t batch_runner::steals() const {
  return impl_->steal_count.load();
}

std::size_t batch_runner::queue_depth() const {
  return impl_->queued.load(std::memory_order_relaxed);
}

std::size_t batch_runner::jobs_in_flight() const {
  return impl_->in_flight.load(std::memory_order_relaxed);
}

void batch_runner::set_cache_enabled(bool enabled) {
  impl_->cache_enabled.store(enabled);
}

bool batch_runner::cache_enabled() const {
  return impl_->cache_enabled.load();
}

batch_cache_stats batch_runner::cache_stats() const {
  batch_cache_stats s;
  s.full_hits = impl_->full_hits.load();
  s.full_misses = impl_->full_misses.load();
  s.opt_hits = impl_->opt_hits.load();
  s.opt_misses = impl_->opt_misses.load();
  if (impl_->disk) {
    const disk_cache_stats d = impl_->disk->stats();
    s.disk_hits = d.hits;
    s.disk_misses = d.misses;
    s.disk_writes = d.writes;
    s.disk_quarantined = d.quarantined;
    s.disk_quarantine_pruned = d.pruned;
  }
  const region_cache::counters rc = impl_->region_tier.counts();
  s.region_hits = rc.hits;
  s.region_misses = rc.misses;
  s.eco_patches = impl_->eco_patches.load();
  {
    std::lock_guard<std::mutex> lock(impl_->cache_mutex);
    s.retained_networks = impl_->retained.size();
    s.retained_evictions = impl_->retained_evictions;
  }
  return s;
}

std::shared_ptr<const aig> batch_runner::retained_network(
    std::uint64_t content_hash) const {
  std::lock_guard<std::mutex> lock(impl_->cache_mutex);
  const auto it = impl_->retained.find(content_hash);
  if (it == impl_->retained.end()) return nullptr;
  // LRU touch: a base being edited must outlive colder retained entries.
  impl_->retained_lru.splice(impl_->retained_lru.begin(),
                             impl_->retained_lru, it->second.lru_pos);
  return it->second.network;
}

void batch_runner::set_retained_bytes(std::size_t budget) {
  std::lock_guard<std::mutex> lock(impl_->cache_mutex);
  impl_->retained_budget = budget;
  impl_->evict_retained_locked();
}

region_cache& batch_runner::regions() { return impl_->region_tier; }

void batch_runner::patch_entry(std::uint64_t circuit_hash,
                               std::size_t num_gates, const std::string& name,
                               const flow_options& options,
                               const flow_result& result) {
  const flow_options keyed = impl_->keyed_options(num_gates, options);
  const impl::cache_key key =
      impl_->full_key_for(circuit_hash, name, keyed);
  impl_->store_full(key, std::make_shared<const flow_result>(result),
                    /*persist=*/true);
  impl_->eco_patches.fetch_add(1, std::memory_order_relaxed);
}

bool batch_runner::drop_entry(std::uint64_t circuit_hash,
                              std::size_t num_gates, const std::string& name,
                              const flow_options& options) {
  const flow_options keyed = impl_->keyed_options(num_gates, options);
  const impl::cache_key full_key =
      impl_->full_key_for(circuit_hash, name, keyed);
  const impl::cache_key opt_key{circuit_hash, fingerprint(keyed.opt)};
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(impl_->cache_mutex);
    if (impl_->full_cache.erase(full_key) > 0) {
      dropped = true;
      for (auto it = impl_->full_order.begin(); it != impl_->full_order.end();
           ++it) {
        if (*it == full_key) {
          impl_->full_order.erase(it);
          break;
        }
      }
    }
    // The optimized-network tier only drops *ready* entries: an in-flight
    // producer still owns its promise and must be left to publish.
    const auto oit = impl_->opt_cache.find(opt_key);
    if (oit != impl_->opt_cache.end() &&
        oit->second.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
      impl_->opt_cache.erase(oit);
      dropped = true;
      for (auto it = impl_->opt_order.begin(); it != impl_->opt_order.end();
           ++it) {
        if (*it == opt_key) {
          impl_->opt_order.erase(it);
          break;
        }
      }
    }
  }
  if (impl_->disk && impl_->disk->drop_entry(full_key.circuit,
                                             full_key.options)) {
    dropped = true;
  }
  if (dropped) impl_->eco_patches.fetch_add(1, std::memory_order_relaxed);
  return dropped;
}

void batch_runner::set_disk_cache(const std::string& directory,
                                  std::size_t max_entries) {
  impl_->disk =
      std::make_unique<disk_result_cache>(directory, max_entries);
}

std::string batch_runner::disk_cache_directory() const {
  return impl_->disk ? impl_->disk->directory() : std::string{};
}

std::future<flow_result> batch_runner::enqueue(aig network, std::string name,
                                               flow_options options,
                                               stage_observer observer) {
  // Capture the submitting thread's trace context: the job body runs on a
  // pool worker, and its spans (flow stages, cache lookups) must attribute
  // to the originating request.  The runner_queue span covers the time the
  // job sat in a worker deque before a thread picked it up.
  const trace::trace_id tid = trace::current();
  const std::uint64_t enqueued_us = trace::now_us();
  auto task = std::make_shared<std::packaged_task<flow_result()>>(
      [this, tid, enqueued_us, network = std::move(network),
       name = std::move(name), options = std::move(options),
       observer = std::move(observer)]() mutable {
        trace::context_scope tscope(tid);
        trace::record("runner_queue", enqueued_us,
                      trace::now_us() - enqueued_us);
        return impl_->run_cached_network(std::move(network), name, options,
                                         observer);
      });
  std::future<flow_result> future = task->get_future();
  impl_->submit([task] { (*task)(); });
  return future;
}

flow_result batch_runner::run_cached(aig network, const std::string& name,
                                     const flow_options& options,
                                     const stage_observer& observer) {
  return impl_->run_cached_network(std::move(network), name, options,
                                   observer);
}

std::shared_ptr<const flow_result> batch_runner::run_cached_shared(
    aig network, const std::string& name, const flow_options& options,
    const stage_observer& observer) {
  return impl_->run_cached_network_shared(std::move(network), name, options,
                                          observer);
}

flow_result batch_runner::run_uncached(aig network, const std::string& name,
                                       const flow_options& options,
                                       const stage_observer& observer) {
  return impl_->run_uncached_network(std::move(network), name, options,
                                     observer);
}

void batch_runner::run_subtasks(std::vector<std::function<void()>> tasks) {
  impl_->run_subtasks(std::move(tasks));
}

subtask_runner batch_runner::make_subtask_runner() {
  return [this](std::vector<std::function<void()>>&& tasks) {
    impl_->run_subtasks(std::move(tasks));
  };
}

std::future<flow_result> batch_runner::enqueue_job(
    std::function<flow_result()> job) {
  const trace::trace_id tid = trace::current();
  const std::uint64_t enqueued_us = trace::now_us();
  auto task = std::make_shared<std::packaged_task<flow_result()>>(
      [tid, enqueued_us, job = std::move(job)]() mutable {
        trace::context_scope tscope(tid);
        trace::record("runner_queue", enqueued_us,
                      trace::now_us() - enqueued_us);
        return job();
      });
  std::future<flow_result> future = task->get_future();
  impl_->submit([task] { (*task)(); });
  return future;
}

void batch_runner::clear_cache() {
  {
    std::lock_guard<std::mutex> lock(impl_->cache_mutex);
    impl_->full_cache.clear();
    impl_->full_order.clear();
    impl_->opt_cache.clear();
    impl_->opt_order.clear();
    impl_->hash_memo.clear();
    impl_->retained.clear();
    impl_->retained_lru.clear();
    impl_->retained_bytes = 0;  // retained_evictions stays cumulative
  }
  impl_->region_tier.clear();
}

batch_report batch_runner::run_jobs(
    std::vector<std::string> names,
    std::vector<std::function<flow_result()>> jobs) {
  if (names.size() != jobs.size()) {
    throw std::invalid_argument("batch_runner: names/jobs size mismatch");
  }
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();

  batch_report report;
  report.threads = num_threads_;
  report.entries.resize(jobs.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    report.entries[i].name = std::move(names[i]);
  }

  // Each worker writes only its own slot; the report is read after
  // wait_idle(), so no further synchronization is needed.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    batch_entry* slot = &report.entries[i];
    std::function<flow_result()> job = std::move(jobs[i]);
    impl_->submit([slot, job = std::move(job)] {
      try {
        slot->result = job();
        slot->ok = true;
      } catch (const std::exception& e) {
        slot->error = e.what();
      } catch (...) {
        slot->error = "unknown exception";
      }
    });
  }
  impl_->wait_idle();

  const std::chrono::duration<double, std::milli> wall = clock::now() - start;
  report.wall_ms = wall.count();
  for (const auto& e : report.entries) {
    if (e.ok) report.flow_ms_sum += e.result.total_ms;
  }
  return report;
}

batch_report batch_runner::run(const std::vector<std::string>& benchmark_names,
                               const flow_options& options) {
  std::vector<std::function<flow_result()>> jobs;
  jobs.reserve(benchmark_names.size());
  for (const auto& name : benchmark_names) {
    jobs.push_back(
        [this, name, options] { return impl_->run_cached_flow(name, options); });
  }
  return run_jobs(benchmark_names, std::move(jobs));
}

batch_report batch_runner::run(
    const std::vector<std::string>& benchmark_names,
    const std::vector<flow_options>& per_entry_options) {
  if (benchmark_names.size() != per_entry_options.size()) {
    throw std::invalid_argument("batch_runner: names/options size mismatch");
  }
  std::vector<std::function<flow_result()>> jobs;
  jobs.reserve(benchmark_names.size());
  for (std::size_t i = 0; i < benchmark_names.size(); ++i) {
    jobs.push_back([this, name = benchmark_names[i],
                    options = per_entry_options[i]] {
      return impl_->run_cached_flow(name, options);
    });
  }
  return run_jobs(benchmark_names, std::move(jobs));
}

batch_report batch_runner::run(
    const std::vector<std::string>& benchmark_names,
    const std::function<flow(const std::string&)>& make_flow) {
  std::vector<std::function<flow_result()>> jobs;
  jobs.reserve(benchmark_names.size());
  for (const auto& name : benchmark_names) {
    flow f = make_flow(name);
    jobs.push_back([f = std::move(f)] { return f.run(); });
  }
  return run_jobs(benchmark_names, std::move(jobs));
}

batch_report run_batch(const std::vector<std::string>& benchmark_names,
                       const flow_options& options, unsigned num_threads) {
  batch_runner runner(num_threads);
  return runner.run(benchmark_names, options);
}

}  // namespace xsfq::flow
