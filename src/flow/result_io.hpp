#pragma once
/// \file result_io.hpp
/// \brief Binary (de)serialization of flow results and their constituents.
///
/// The value side of the disk-persistent result cache and of the serve wire
/// protocol: an entire `flow_result` — optimized AIG, mapped xSFQ netlist,
/// optimize/baseline stats, per-stage timings — round-trips through the
/// little-endian codec in util/serialize.hpp.
///
/// The AIG is stored as its construction replay: CIs and gates in node-array
/// order (the array is topologically sorted by construction), then COs and
/// register wiring.  Replaying `create_and` on a strashed network recreates
/// every node at its original index — the strash table and the trivial-case
/// simplifier see exactly the prefix they saw during the original
/// construction — and `read_aig` verifies that invariant node by node, plus
/// the full `content_hash` at the end, so a corrupted or stale entry decodes
/// into `serialize_error`, never into a silently different network.

#include "aig/aig.hpp"
#include "flow/flow.hpp"
#include "util/serialize.hpp"

namespace xsfq::flow {

void write_aig(byte_writer& w, const aig& network);
[[nodiscard]] aig read_aig(byte_reader& r);

void write_flow_result(byte_writer& w, const flow_result& result);
[[nodiscard]] flow_result read_flow_result(byte_reader& r);

void write_stage_timings(byte_writer& w,
                         const std::vector<stage_timing>& timings);
[[nodiscard]] std::vector<stage_timing> read_stage_timings(byte_reader& r);

/// Shared with the serve protocol's progress events — one field list for
/// stage_counters on disk and on the wire.
void write_stage_counters(byte_writer& w, const stage_counters& c);
[[nodiscard]] stage_counters read_stage_counters(byte_reader& r);

void write_mapping_result(byte_writer& w, const mapping_result& mapped);
[[nodiscard]] mapping_result read_mapping_result(byte_reader& r);

}  // namespace xsfq::flow
