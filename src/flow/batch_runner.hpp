#pragma once
/// \file batch_runner.hpp
/// \brief Parallel execution of synthesis flows over benchmark suites.
///
/// One persistent worker pool runs a flow per circuit concurrently; results
/// come back in input order with per-circuit timing, so the output of a
/// 8-thread run is byte-identical to a 1-thread run (every flow is
/// deterministic, and aggregation happens in input order after the barrier).
/// This is the single parallel engine behind every table-reproduction binary
/// and the intended entry point for future serving workloads.

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "flow/flow.hpp"

namespace xsfq::flow {

/// Parses a worker-thread count from a command-line argument.  Accepts
/// 0 (= hardware concurrency) through 256; returns nullopt on non-numeric,
/// trailing-garbage, negative, or out-of-range input so callers can print
/// usage instead of spawning a surprising number of threads.
std::optional<unsigned> parse_thread_count(const char* arg);

/// Result slot of one batch entry.  A failed flow (stage threw) carries the
/// exception text instead of a result.
struct batch_entry {
  std::string name;
  bool ok = false;
  std::string error;   ///< what() of the stage exception, if !ok
  flow_result result;  ///< valid only when ok
};

/// Outcome of one batch: entries in input order plus wall-clock accounting.
struct batch_report {
  std::vector<batch_entry> entries;
  double wall_ms = 0.0;      ///< elapsed wall-clock for the whole batch
  double flow_ms_sum = 0.0;  ///< sum of per-circuit flow times (CPU-ish)
  unsigned threads = 1;      ///< worker threads that served the batch

  std::size_t num_ok() const;
  std::size_t num_failed() const;
  /// Results of the successful entries, still in input order.
  std::vector<const flow_result*> ok_results() const;
};

/// Deterministic roll-up across the successful circuits of a batch.
struct batch_summary {
  std::size_t circuits = 0;
  std::size_t aig_gates = 0;         ///< optimized AIG nodes, summed
  std::size_t xsfq_jj = 0;           ///< mapped JJ, summed
  std::size_t rsfq_jj = 0;           ///< baseline JJ without clock, summed
  std::size_t rsfq_jj_clock = 0;     ///< baseline JJ with clock, summed
  double geomean_savings = 0.0;      ///< geomean rsfq_jj / xsfq_jj
  double geomean_savings_clock = 0.0;
};

batch_summary summarize(const batch_report& report);

/// Thread-pool flow executor.  Construct once, run many batches; worker
/// threads persist across run() calls.  One batch at a time: run() and
/// run_jobs() must not be called concurrently from multiple threads on the
/// same runner (in-flight accounting and wall-clock timing are per-runner,
/// not per-call) — a serving front end should serialize batches or use one
/// runner per caller.
class batch_runner {
 public:
  /// \param num_threads worker count; 0 picks hardware_concurrency (min 1).
  explicit batch_runner(unsigned num_threads = 0);
  ~batch_runner();
  batch_runner(const batch_runner&) = delete;
  batch_runner& operator=(const batch_runner&) = delete;

  unsigned num_threads() const { return num_threads_; }

  /// Runs the canned paper flow (generate -> optimize -> map -> baseline)
  /// over every named benchmark.
  batch_report run(const std::vector<std::string>& benchmark_names,
                   const flow_options& options = {});

  /// Runs an arbitrary per-name flow factory: `make_flow(name)` is called on
  /// the submitting thread, the returned flow executes on a worker.
  batch_report run(const std::vector<std::string>& benchmark_names,
                   const std::function<flow(const std::string&)>& make_flow);

  /// Fully generic: one job per entry, executed on the pool, results in
  /// input order.
  batch_report run_jobs(std::vector<std::string> names,
                        std::vector<std::function<flow_result()>> jobs);

 private:
  struct impl;
  impl* impl_;
  unsigned num_threads_ = 1;
};

/// One-shot convenience: run the paper flow over the names with a temporary
/// pool of `num_threads` workers.
batch_report run_batch(const std::vector<std::string>& benchmark_names,
                       const flow_options& options = {},
                       unsigned num_threads = 0);

}  // namespace xsfq::flow
