#pragma once
/// \file batch_runner.hpp
/// \brief Parallel execution of synthesis flows over benchmark suites.
///
/// One persistent worker pool runs a flow per circuit concurrently; results
/// come back in input order with per-circuit timing, so the output of a
/// 8-thread run is byte-identical to a 1-thread run (every flow is
/// deterministic, and aggregation happens in input order after the barrier).
///
/// Scheduling uses per-worker deques with work stealing: each worker pops
/// its own queue front-first and, when empty, steals from the back of a
/// sibling's queue.  Skewed suites (one c6288 among small circuits) no
/// longer straggle behind a single shared queue, and stealing never affects
/// output bytes because every result is written to its input-ordered slot.
///
/// Canned-flow batches additionally consult a cross-run result cache keyed
/// by (circuit content hash, flow-options fingerprint): re-running a suite
/// entry under identical options returns the cached flow_result, and
/// re-running the same circuit under different *mapping* options still
/// reuses the cached optimized network (the expensive stage).  This is the
/// single parallel engine behind every table-reproduction binary and the
/// intended entry point for future serving workloads.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flow/flow.hpp"

namespace xsfq::flow {

/// Parses a worker-thread count from a command-line argument.  Accepts
/// 0 (= hardware concurrency) through 256; returns nullopt on non-numeric,
/// trailing-garbage, negative, or out-of-range input so callers can print
/// usage instead of spawning a surprising number of threads.
std::optional<unsigned> parse_thread_count(const char* arg);

/// Result slot of one batch entry.  A failed flow (stage threw) carries the
/// exception text instead of a result.
struct batch_entry {
  std::string name;
  bool ok = false;
  std::string error;   ///< what() of the stage exception, if !ok
  flow_result result;  ///< valid only when ok
};

/// Outcome of one batch: entries in input order plus wall-clock accounting.
struct batch_report {
  std::vector<batch_entry> entries;
  double wall_ms = 0.0;      ///< elapsed wall-clock for the whole batch
  double flow_ms_sum = 0.0;  ///< sum of per-circuit flow times (CPU-ish)
  unsigned threads = 1;      ///< worker threads that served the batch

  std::size_t num_ok() const;
  std::size_t num_failed() const;
  /// Results of the successful entries, still in input order.
  std::vector<const flow_result*> ok_results() const;
};

/// Deterministic roll-up across the successful circuits of a batch.
struct batch_summary {
  std::size_t circuits = 0;
  std::size_t aig_gates = 0;         ///< optimized AIG nodes, summed
  std::size_t xsfq_jj = 0;           ///< mapped JJ, summed
  std::size_t rsfq_jj = 0;           ///< baseline JJ without clock, summed
  std::size_t rsfq_jj_clock = 0;     ///< baseline JJ with clock, summed
  double geomean_savings = 0.0;      ///< geomean rsfq_jj / xsfq_jj
  double geomean_savings_clock = 0.0;
};

batch_summary summarize(const batch_report& report);

/// Cumulative result-cache counters of one batch_runner.  The disk tier
/// counters stay zero until set_disk_cache() enables persistence.
struct batch_cache_stats {
  std::uint64_t full_hits = 0;    ///< whole flow_results served from memory
  std::uint64_t full_misses = 0;
  std::uint64_t opt_hits = 0;     ///< optimized networks served from cache
  std::uint64_t opt_misses = 0;
  std::uint64_t disk_hits = 0;    ///< flow_results loaded from the disk tier
  std::uint64_t disk_misses = 0;  ///< disk lookups that found nothing usable
  std::uint64_t disk_writes = 0;  ///< flow_results persisted to disk
  /// Undecodable disk entries / orphaned temp files moved to quarantine/
  /// instead of served (v5; see flow/disk_cache.hpp).
  std::uint64_t disk_quarantined = 0;
  std::uint64_t region_hits = 0;    ///< optimized regions replayed (ECO tier)
  std::uint64_t region_misses = 0;  ///< regions optimized live
  std::uint64_t eco_patches = 0;    ///< entries patched/dropped by ECO
  std::uint64_t retained_networks = 0;  ///< networks held for delta requests
  /// v7: retained networks evicted by the LRU byte budget (see
  /// set_retained_bytes) — a high rate means sessions churn through more
  /// base circuits than the budget can pin.
  std::uint64_t retained_evictions = 0;
  /// v7: quarantined disk-cache files pruned to keep quarantine/ inside its
  /// count/byte bounds (see flow/disk_cache.hpp).
  std::uint64_t disk_quarantine_pruned = 0;
};

/// Thread-pool flow executor.  Construct once, run many batches; worker
/// threads, their deques, and the result cache persist across run() calls.
/// One batch at a time: run() and run_jobs() must not be called concurrently
/// from multiple threads on the same runner (in-flight accounting and
/// wall-clock timing are per-runner, not per-call).  A serving front end
/// instead multiplexes through enqueue(), which is safe from any number of
/// threads simultaneously and shares the worker pool and every cache tier
/// with the batch entry points (mixing enqueue() with a concurrent run()
/// works, but the batch's wall-clock then includes the service jobs).
class batch_runner {
 public:
  /// \param num_threads worker count; 0 picks hardware_concurrency (min 1).
  explicit batch_runner(unsigned num_threads = 0);
  ~batch_runner();
  batch_runner(const batch_runner&) = delete;
  batch_runner& operator=(const batch_runner&) = delete;

  unsigned num_threads() const { return num_threads_; }

  /// Jobs taken from a sibling worker's deque since construction.  Purely
  /// observational (load-balance visibility in benches and tests); stealing
  /// never changes output bytes.
  std::uint64_t steals() const;

  /// Jobs sitting in some worker deque right now, not yet claimed.  A
  /// point-in-time gauge for serving metrics; racy by nature, never used
  /// for control decisions.
  std::size_t queue_depth() const;

  /// Jobs queued or currently executing (queue_depth() plus running jobs).
  std::size_t jobs_in_flight() const;

  /// Runs the canned paper flow (generate -> optimize -> map -> baseline)
  /// over every named benchmark, consulting the result cache per entry.
  batch_report run(const std::vector<std::string>& benchmark_names,
                   const flow_options& options = {});

  /// Same, with per-entry options (ablation sweeps re-running one circuit
  /// under several option sets; the optimize cache tier de-duplicates the
  /// expensive stage across entries that share opt parameters).
  batch_report run(const std::vector<std::string>& benchmark_names,
                   const std::vector<flow_options>& per_entry_options);

  /// Runs an arbitrary per-name flow factory: `make_flow(name)` is called on
  /// the submitting thread, the returned flow executes on a worker.  Opaque
  /// flows bypass the result cache.
  batch_report run(const std::vector<std::string>& benchmark_names,
                   const std::function<flow(const std::string&)>& make_flow);

  /// Fully generic: one job per entry, executed on the pool, results in
  /// input order.  Bypasses the result cache.
  batch_report run_jobs(std::vector<std::string> names,
                        std::vector<std::function<flow_result()>> jobs);

  /// Submits ONE canned-flow job for an already-built network and returns
  /// immediately; the flow runs on the worker pool with every cache tier
  /// applied (memory, in-flight optimize dedup, disk).  Unlike the batch
  /// run() entry points this is safe to call concurrently from any number
  /// of threads — it is the serving front end's multiplexing primitive.
  /// The observer (optional) streams per-stage progress from the executing
  /// worker; cache hits replay the cached timings with from_cache=true.
  std::future<flow_result> enqueue(aig network, std::string name,
                                   flow_options options,
                                   stage_observer observer = {});

  /// Same submission path for an arbitrary job (bypasses the result cache).
  std::future<flow_result> enqueue_job(std::function<flow_result()> job);

  /// The cached canned flow executed inline on the *calling* thread (all
  /// cache tiers applied).  For callers that already sit on a pool worker —
  /// e.g. an enqueue_job() job that wants cache semantics after its own
  /// preamble — where a nested enqueue().get() could self-deadlock.
  flow_result run_cached(aig network, const std::string& name,
                         const flow_options& options,
                         const stage_observer& observer = {});

  /// run_cached without the by-value copies: returns the immutable cache
  /// entry itself (hit or freshly stored miss alike).  The serving delta
  /// path renders its response straight out of the entry, so a sub-ms ECO
  /// pays zero flow_result copies; a cache-disabled runner still computes
  /// and wraps a fresh result.  Cached timings are replayed through the
  /// observer with from_cache=true exactly as run_cached does.
  std::shared_ptr<const flow_result> run_cached_shared(
      aig network, const std::string& name, const flow_options& options,
      const stage_observer& observer = {});

  /// The canned flow with every cache tier bypassed — no lookups, no stores,
  /// no region cache — executed inline on the calling thread.  This is the
  /// ECO comparator: "what would a cold run of this exact circuit produce",
  /// byte-identical to the incremental path by the determinism contract.
  flow_result run_uncached(aig network, const std::string& name,
                           const flow_options& options,
                           const stage_observer& observer = {});

  // ----- ECO surface (serve/synth_service delta requests) -------------------

  /// The network most recently served under `content_hash` through the
  /// serving entry points (enqueue / run_cached), or nullptr when it was
  /// never seen or has been evicted (byte-budgeted LRU; a hit refreshes the
  /// entry).  Delta requests replay their edit script onto this retained
  /// base instead of re-parsing it.
  std::shared_ptr<const aig> retained_network(std::uint64_t content_hash) const;

  /// v7: byte budget of the retained-network tier (default 256 MiB),
  /// measured with aig::memory_bytes.  Shrinking below the current
  /// footprint evicts least-recently-used entries immediately (counted in
  /// cache_stats().retained_evictions); the most recent entry is always
  /// kept even when it alone exceeds the budget.
  void set_retained_bytes(std::size_t budget);

  /// The cross-run optimized-region cache shared by every grain-mode flow on
  /// this runner (installed automatically when flow_options asks for
  /// opt.partition_grain > 0 without supplying its own cache).
  region_cache& regions();

  /// Inserts `result` for (circuit, name, options) into the memory tier and
  /// the disk tier directly, as if a flow had just computed it — the ECO
  /// patch path: the incrementally recomputed result lands under the edited
  /// circuit's key without waiting for the next request to recompute it.
  /// Counted in cache_stats().eco_patches.
  void patch_entry(std::uint64_t circuit_hash, std::size_t num_gates,
                   const std::string& name, const flow_options& options,
                   const flow_result& result);

  /// Drops the memory/disk entries (full result + optimized network) for
  /// (circuit, name, options).  Returns true when anything was dropped.  The
  /// ECO supersede path calls this on the base circuit's hash so a stale
  /// entry cannot be served after its circuit was edited away; without it,
  /// superseded entries linger until mtime pruning.  Counted in
  /// cache_stats().eco_patches when something was dropped.
  bool drop_entry(std::uint64_t circuit_hash, std::size_t num_gates,
                  const std::string& name, const flow_options& options);

  /// Runs every closure to completion with pool assistance: the closures are
  /// offered to the worker deques AND claimed by the calling thread itself,
  /// so progress is guaranteed even when every worker is busy (a pool worker
  /// may call this re-entrantly — that is exactly the intra-flow parallelism
  /// path).  Closures must not throw; callers capture errors themselves.
  void run_subtasks(std::vector<std::function<void()>> tasks);

  /// run_subtasks as an optimize_params::executor.  The runner must outlive
  /// any flow using the returned function; the cached flow entry points
  /// install it automatically whenever flow_options asks for
  /// opt.flow_jobs > 1 without supplying an executor.
  subtask_runner make_subtask_runner();

  /// The cross-run result cache is on by default; disabling it also clears
  /// nothing (re-enable to keep using prior entries).
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const;
  batch_cache_stats cache_stats() const;
  void clear_cache();

  /// Attaches the disk-persistent cache tier rooted at `directory` (created
  /// if absent).  Full-result lookups that miss in memory then consult the
  /// disk tier, and every freshly computed result is persisted atomically,
  /// so warm results survive process restarts.  Call before serving traffic;
  /// not thread-safe against in-flight jobs.  Throws std::runtime_error when
  /// the directory cannot be created.
  void set_disk_cache(const std::string& directory,
                      std::size_t max_entries = 1024);
  /// Directory of the disk tier, or empty when disabled.
  std::string disk_cache_directory() const;

 private:
  struct impl;
  impl* impl_;
  unsigned num_threads_ = 1;
};

/// One-shot convenience: run the paper flow over the names with a temporary
/// pool of `num_threads` workers.
batch_report run_batch(const std::vector<std::string>& benchmark_names,
                       const flow_options& options = {},
                       unsigned num_threads = 0);

}  // namespace xsfq::flow
