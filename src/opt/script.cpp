#include "opt/script.hpp"

#include "opt/opt_engine.hpp"
#include "opt/partition.hpp"

namespace xsfq {

opt_counters opt_counters::delta_since(const opt_counters& before) const {
  opt_counters d = *this;
  d.passes -= before.passes;
  d.cuts_enumerated -= before.cuts_enumerated;
  d.cut_candidates -= before.cut_candidates;
  d.mffc_queries -= before.mffc_queries;
  d.replacements -= before.replacements;
  d.resynth_cache_hits -= before.resynth_cache_hits;
  d.equiv_checks -= before.equiv_checks;
  d.sim_words -= before.sim_words;
  d.sim_node_evals -= before.sim_node_evals;
  d.rebuilds_avoided -= before.rebuilds_avoided;
  // cut_arena_bytes / net_arena_bytes stay the peak footprint, not a delta.
  return d;
}

aig optimize(const aig& network, const optimize_params& params,
             optimize_stats* stats) {
  if (params.flow_jobs > 1 || params.partition_grain > 0) {
    return optimize_partitioned(network, params, stats);
  }
  // The calling thread's engine: every balance/rewrite/refactor round of
  // every call reuses the same cut arena, network arena, MFFC scratch, and
  // resynthesis caches.
  return opt_engine::thread_local_engine().optimize(network, params, stats);
}

aig run_pass(const aig& network, const std::string& pass) {
  return opt_engine::thread_local_engine().run_pass(network, pass);
}

}  // namespace xsfq
