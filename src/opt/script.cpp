#include "opt/script.hpp"

#include "opt/opt_engine.hpp"

namespace xsfq {

aig optimize(const aig& network, const optimize_params& params,
             optimize_stats* stats) {
  // One engine for the whole script: every balance/rewrite/refactor round
  // reuses the same cut arena, MFFC scratch, and resynthesis caches.
  opt_engine engine;
  return engine.optimize(network, params, stats);
}

aig run_pass(const aig& network, const std::string& pass) {
  opt_engine engine;
  return engine.run_pass(network, pass);
}

}  // namespace xsfq
