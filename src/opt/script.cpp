#include "opt/script.hpp"

#include <stdexcept>

#include "opt/balance.hpp"
#include "opt/cut_rewriting.hpp"

namespace xsfq {

aig optimize(const aig& network, const optimize_params& params,
             optimize_stats* stats) {
  optimize_stats local;
  local.initial_gates = network.num_gates();
  local.initial_depth = network.depth();

  aig current = network.cleanup();
  for (unsigned round = 0; round < params.max_rounds; ++round) {
    const std::size_t before = current.num_gates();
    current = balance(current);
    current = rewrite(current);
    current = refactor(current, params.refactor_cut_size);
    current = balance(current);
    current = rewrite(current, params.zero_gain_final);
    ++local.rounds;
    if (current.num_gates() >= before) break;
  }

  local.final_gates = current.num_gates();
  local.final_depth = current.depth();
  if (stats) *stats = local;
  return current;
}

aig run_pass(const aig& network, const std::string& pass) {
  if (pass == "b") return balance(network);
  if (pass == "rw") return rewrite(network, false);
  if (pass == "rwz") return rewrite(network, true);
  if (pass == "rf") return refactor(network, 6, false);
  if (pass == "rfz") return refactor(network, 6, true);
  if (pass == "clean") return network.cleanup();
  throw std::invalid_argument("run_pass: unknown pass '" + pass + "'");
}

}  // namespace xsfq
