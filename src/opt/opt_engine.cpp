#include "opt/opt_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "opt/rewrite_library.hpp"
#include "util/factor.hpp"

namespace xsfq {
namespace {

/// Replicates a table over k <= 4 variables to the full 16-row domain.
std::uint16_t to_uint16(const truth_table& t) {
  const std::uint64_t word = t.word0();
  switch (t.num_vars()) {
    case 0: return (word & 1u) ? 0xFFFF : 0x0000;
    case 1: {
      const auto b = static_cast<std::uint16_t>(word & 0x3u);
      return static_cast<std::uint16_t>(b * 0x5555u);
    }
    case 2: {
      const auto b = static_cast<std::uint16_t>(word & 0xFu);
      return static_cast<std::uint16_t>(b * 0x1111u);
    }
    case 3: {
      const auto b = static_cast<std::uint16_t>(word & 0xFFu);
      return static_cast<std::uint16_t>(b * 0x0101u);
    }
    default: return static_cast<std::uint16_t>(word & 0xFFFFu);
  }
}

/// Emits a factored expression as structure steps; returns a literal.
std::uint32_t emit_factor(const factor_expr& e, aig_structure& s) {
  switch (e.op) {
    case factor_expr::kind::constant:
      return e.const_value ? aig_structure::const1_lit
                           : aig_structure::const0_lit;
    case factor_expr::kind::literal:
      return (e.var << 1) | (e.complemented ? 1u : 0u);
    case factor_expr::kind::and_op:
    case factor_expr::kind::or_op: {
      // n-ary gates become balanced binary trees; OR via De Morgan.
      const bool is_or = e.op == factor_expr::kind::or_op;
      std::vector<std::uint32_t> lits;
      lits.reserve(e.children.size());
      for (const auto& child : e.children) {
        std::uint32_t lit = emit_factor(*child, s);
        if (is_or) lit ^= 1u;  // complement for De Morgan
        lits.push_back(lit);
      }
      while (lits.size() > 1) {
        std::vector<std::uint32_t> next;
        next.reserve((lits.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
          s.steps.push_back({lits[i], lits[i + 1]});
          next.push_back(
              static_cast<std::uint32_t>(s.num_leaves + s.steps.size() - 1)
              << 1);
        }
        if (lits.size() % 2) next.push_back(lits.back());
        lits = std::move(next);
      }
      return is_or ? (lits.front() ^ 1u) : lits.front();
    }
  }
  return aig_structure::const0_lit;
}

/// Collects the leaves of the maximal AND tree rooted at `n`: traversal
/// descends through non-complemented fanins that are ANDs with a single
/// fanout (descending through shared nodes would duplicate logic).
void collect_conjuncts(const aig& network, aig::node_index n,
                       const std::vector<std::uint32_t>& fanout,
                       std::vector<signal>& leaves) {
  for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
    if (!f.is_complemented() && network.is_gate(f.index()) &&
        fanout[f.index()] == 1) {
      collect_conjuncts(network, f.index(), fanout, leaves);
    } else {
      leaves.push_back(f);
    }
  }
}

}  // namespace

const aig_structure* opt_engine::library_candidate(
    const truth_table& function) {
  const std::uint16_t key = to_uint16(function);
  auto it = library_cache_.find(key);
  if (it == library_cache_.end()) {
    it = library_cache_
             .emplace(key, rewrite_library::instance().structure(key))
             .first;
  } else {
    ++counters_.resynth_cache_hits;
  }
  return it->second ? &*it->second : nullptr;
}

const aig_structure* opt_engine::factoring_candidate(
    const truth_table& function) {
  auto it = factoring_cache_.find(function);
  if (it == factoring_cache_.end()) {
    aig_structure s;
    s.num_leaves = function.num_vars();
    s.out_lit = emit_factor(*factor_function(function), s);
    it = factoring_cache_.emplace(function, std::move(s)).first;
  } else {
    ++counters_.resynth_cache_hits;
  }
  return it->second ? &*it->second : nullptr;
}

aig opt_engine::rewrite_core(const aig& network, const provider_fn& provider,
                             const cut_rewriting_params& params,
                             cut_rewriting_stats* stats) {
  const cut_set& cuts = cuts_.enumerate(network, params.cuts);
  mffc_.attach(network);
  ++counters_.passes;
  counters_.cuts_enumerated += cuts.num_cuts();
  counters_.cut_candidates += cuts_.last_counters().candidates;
  counters_.cut_arena_bytes = std::max<std::uint64_t>(
      counters_.cut_arena_bytes, cuts.arena_bytes());

  aig dest;
  map_.assign(network.size(), dest.get_constant(false));
  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    map_[network.pi(i).index()] = dest.create_pi(network.pi_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    map_[network.register_at(i).output_node] = dest.create_register_output(
        network.register_at(i).init, network.register_name(i));
  }

  cut_rewriting_stats local_stats;
  network.foreach_gate([&](aig::node_index n) {
    // Default: copy the AND gate.
    const signal f0 = network.fanin0(n);
    const signal f1 = network.fanin1(n);
    const signal d0 = map_[f0.index()] ^ f0.is_complemented();
    const signal d1 = map_[f1.index()] ^ f1.is_complemented();

    int best_gain = 0;
    bool have_best = false;

    for (const cut_view c : cuts[n]) {
      const auto cut_leaves = c.leaves();
      if (cut_leaves.size() == 1 && cut_leaves[0] == n) continue;  // trivial
      const unsigned mffc = mffc_.size(n, cut_leaves);
      if (mffc == 0) continue;
      const aig_structure* candidate = provider(c.function());
      if (!candidate) continue;

      leaves_.clear();
      for (const auto leaf : cut_leaves) leaves_.push_back(map_[leaf]);
      // Pad unused leaf slots (library structures always use 4 slots).
      while (leaves_.size() < candidate->num_leaves) {
        leaves_.push_back(dest.get_constant(false));
      }

      const auto added =
          count_new_nodes(dest, *candidate, leaves_, mffc, probe_);
      if (!added) continue;
      const int gain = static_cast<int>(mffc) - static_cast<int>(*added);
      const bool accept =
          gain > best_gain ||
          (params.allow_zero_gain && gain == 0 && !have_best);
      if (accept) {
        best_gain = gain;
        have_best = true;
        best_structure_ = *candidate;
        best_leaves_.assign(leaves_.begin(), leaves_.end());
      }
    }

    if (have_best) {
      map_[n] = build_structure(dest, best_structure_, best_leaves_);
      ++local_stats.replacements;
      local_stats.gain_estimate += static_cast<unsigned>(best_gain);
    } else {
      map_[n] = dest.create_and(d0, d1);
    }
  });

  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const signal po = network.po_signal(i);
    dest.create_po(map_[po.index()] ^ po.is_complemented(),
                   network.po_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    if (reg.input_set) {
      dest.set_register_input(i,
                              map_[reg.input.index()] ^
                                  reg.input.is_complemented());
    }
  }
  counters_.replacements += local_stats.replacements;
  counters_.mffc_queries = mffc_.num_queries();
  if (stats) *stats = local_stats;
  return dest.cleanup();
}

aig opt_engine::cut_rewriting(const aig& network,
                              const resynthesis_fn& resynthesize,
                              const cut_rewriting_params& params,
                              cut_rewriting_stats* stats) {
  return rewrite_core(
      network,
      [this, &resynthesize](const truth_table& f) -> const aig_structure* {
        adapted_ = resynthesize(f);
        return adapted_ ? &*adapted_ : nullptr;
      },
      params, stats);
}

aig opt_engine::rewrite(const aig& network, bool allow_zero_gain) {
  cut_rewriting_params params;
  params.cuts.cut_size = 4;
  params.allow_zero_gain = allow_zero_gain;
  return rewrite_core(
      network,
      [this](const truth_table& f) { return library_candidate(f); }, params,
      nullptr);
}

aig opt_engine::refactor(const aig& network, unsigned cut_size,
                         bool allow_zero_gain) {
  cut_rewriting_params params;
  params.cuts.cut_size = cut_size;
  params.cuts.cut_limit = 8;
  params.allow_zero_gain = allow_zero_gain;
  return rewrite_core(
      network,
      [this](const truth_table& f) { return factoring_candidate(f); }, params,
      nullptr);
}

aig opt_engine::balance(const aig& network) {
  const auto fanout = network.compute_fanout_counts();
  ++counters_.passes;

  aig dest;
  balance_map_.assign(network.size(), dest.get_constant(false));
  dest_level_.assign(1, 0);  // level of the constant node

  auto level_of = [&](signal s) { return dest_level_[s.index()]; };
  auto create_and_leveled = [&](signal a, signal b) {
    const signal r = dest.create_and(a, b);
    if (r.index() >= dest_level_.size()) {
      dest_level_.resize(r.index() + 1,
                         1 + std::max(level_of(a), level_of(b)));
    }
    return r;
  };

  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    const signal s = dest.create_pi(network.pi_name(i));
    balance_map_[network.pi(i).index()] = s;
    dest_level_.resize(s.index() + 1, 0);
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const signal s = dest.create_register_output(
        network.register_at(i).init, network.register_name(i));
    balance_map_[network.register_at(i).output_node] = s;
    dest_level_.resize(s.index() + 1, 0);
  }

  // Only rebuild tree roots: gates that are not absorbed into a parent tree.
  // A gate is absorbed when referenced exactly once via a non-complemented
  // edge from another gate; roots are everything else that is referenced.
  is_root_.assign(network.size(), false);
  network.foreach_gate([&](aig::node_index n) {
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (network.is_gate(f.index()) &&
          (f.is_complemented() || fanout[f.index()] != 1)) {
        is_root_[f.index()] = true;
      }
    }
  });
  network.foreach_co([&](signal s, std::size_t) {
    if (network.is_gate(s.index())) is_root_[s.index()] = true;
  });

  // Min-heap on arrival levels (pair the two shallowest operands first);
  // push_heap/pop_heap on a reused vector replicate std::priority_queue.
  using item = std::pair<std::uint32_t, signal>;  // (level, signal)
  auto cmp = [](const item& a, const item& b) { return a.first > b.first; };

  network.foreach_gate([&](aig::node_index n) {
    if (!is_root_[n]) return;
    conjuncts_.clear();
    collect_conjuncts(network, n, fanout, conjuncts_);

    heap_.clear();
    for (const signal c : conjuncts_) {
      const signal m = balance_map_[c.index()] ^ c.is_complemented();
      heap_.emplace_back(level_of(m), m);
      std::push_heap(heap_.begin(), heap_.end(), cmp);
    }
    while (heap_.size() > 1) {
      const item a = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      heap_.pop_back();
      const item b = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      heap_.pop_back();
      const signal r = create_and_leveled(a.second, b.second);
      heap_.emplace_back(level_of(r), r);
      std::push_heap(heap_.begin(), heap_.end(), cmp);
    }
    balance_map_[n] = heap_.front().second;
  });

  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const signal po = network.po_signal(i);
    dest.create_po(balance_map_[po.index()] ^ po.is_complemented(),
                   network.po_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    if (reg.input_set) {
      dest.set_register_input(
          i, balance_map_[reg.input.index()] ^ reg.input.is_complemented());
    }
  }
  return dest.cleanup();
}

void opt_engine::verify_pass(const aig& before, const aig& after,
                             const std::string& pass_name, unsigned rounds) {
  ++counters_.equiv_checks;
  // Seed varies per check so successive passes see fresh patterns but the
  // whole script stays deterministic.
  const bool ok = equiv_.check(before, after, rounds,
                               /*seed=*/0x51D0 + counters_.equiv_checks);
  const sim_counters sim = equiv_.counters();
  counters_.sim_words = sim.pattern_words;
  counters_.sim_node_evals = sim.node_evals;
  if (!ok) {
    throw std::runtime_error("optimize: pass '" + pass_name +
                             "' broke simulation equivalence");
  }
}

aig opt_engine::run_pass(const aig& network, const std::string& pass) {
  if (pass == "b") return balance(network);
  if (pass == "rw") return rewrite(network, false);
  if (pass == "rwz") return rewrite(network, true);
  if (pass == "rf") return refactor(network, 6, false);
  if (pass == "rfz") return refactor(network, 6, true);
  if (pass == "clean") return network.cleanup();
  throw std::invalid_argument("run_pass: unknown pass '" + pass + "'");
}

aig opt_engine::optimize(const aig& network, const optimize_params& params,
                         optimize_stats* stats) {
  optimize_stats local;
  local.initial_gates = network.num_gates();
  local.initial_depth = network.depth();
  const opt_counters before = counters_;

  // Runs one pass and, when requested, pins its output to its input with a
  // randomized wide-sim equivalence check on the engine's recycled scratch.
  const auto checked = [&](const aig& src, const char* pass_name,
                           auto&& pass_fn) {
    aig next = pass_fn(src);
    if (params.validate_passes) {
      verify_pass(src, next, pass_name, params.validate_rounds);
    }
    return next;
  };

  aig current = network.cleanup();
  for (unsigned round = 0; round < params.max_rounds; ++round) {
    const std::size_t gates_before = current.num_gates();
    current = checked(current, "b", [&](const aig& g) { return balance(g); });
    current = checked(current, "rw", [&](const aig& g) { return rewrite(g); });
    current = checked(current, "rf", [&](const aig& g) {
      return refactor(g, params.refactor_cut_size);
    });
    current = checked(current, "b", [&](const aig& g) { return balance(g); });
    current = checked(current, "rw", [&](const aig& g) {
      return rewrite(g, params.zero_gain_final);
    });
    ++local.rounds;
    if (current.num_gates() >= gates_before) break;
  }

  local.final_gates = current.num_gates();
  local.final_depth = current.depth();
  local.work = counters_;
  local.work.passes -= before.passes;
  local.work.cuts_enumerated -= before.cuts_enumerated;
  local.work.cut_candidates -= before.cut_candidates;
  local.work.mffc_queries -= before.mffc_queries;
  local.work.replacements -= before.replacements;
  local.work.resynth_cache_hits -= before.resynth_cache_hits;
  local.work.equiv_checks -= before.equiv_checks;
  local.work.sim_words -= before.sim_words;
  local.work.sim_node_evals -= before.sim_node_evals;
  // cut_arena_bytes stays the peak footprint, not a delta.
  if (stats) *stats = local;
  return current;
}

}  // namespace xsfq
