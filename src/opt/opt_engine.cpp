#include "opt/opt_engine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "opt/rewrite_library.hpp"
#include "util/factor.hpp"
#include "util/hash.hpp"
#include "util/isop.hpp"

namespace xsfq {
namespace {

/// Replicates a table over k <= 4 variables to the full 16-row domain.
std::uint16_t to_uint16(const truth_table& t) {
  const std::uint64_t word = t.word0();
  switch (t.num_vars()) {
    case 0: return (word & 1u) ? 0xFFFF : 0x0000;
    case 1: {
      const auto b = static_cast<std::uint16_t>(word & 0x3u);
      return static_cast<std::uint16_t>(b * 0x5555u);
    }
    case 2: {
      const auto b = static_cast<std::uint16_t>(word & 0xFu);
      return static_cast<std::uint16_t>(b * 0x1111u);
    }
    case 3: {
      const auto b = static_cast<std::uint16_t>(word & 0xFFu);
      return static_cast<std::uint16_t>(b * 0x0101u);
    }
    default: return static_cast<std::uint16_t>(word & 0xFFFFu);
  }
}

// ----- tree-free factoring emission ----------------------------------------
// The refactor provider used to build a factor_expr tree (one heap node per
// literal/operator) and feed it to emit_factor; allocation dominated the cold
// cost of first-seen cut functions.  The emitters below walk the same
// quick-factor recursion but append structure steps directly, reproducing
// emit_factor(*factor_cover(cover)) byte for byte (pinned by
// tests/test_isop_factor.cpp and the golden optimize fingerprints).

/// Balanced binary reduction over emitted literals — the exact reduction of
/// emit_factor's and_op/or_op case (for OR, callers pass pre-complemented
/// literals and complement the result).
std::uint32_t reduce_emitted(std::vector<std::uint32_t>& lits, bool is_or,
                             aig_structure& s) {
  while (lits.size() > 1) {
    std::size_t out = 0;
    std::size_t i = 0;
    for (; i + 1 < lits.size(); i += 2) {
      s.steps.push_back({lits[i], lits[i + 1]});
      lits[out++] =
          static_cast<std::uint32_t>(s.num_leaves + s.steps.size() - 1) << 1;
    }
    if (i < lits.size()) lits[out++] = lits[i];
    lits.resize(out);
  }
  return is_or ? (lits.front() ^ 1u) : lits.front();
}

/// Tree-free factoring with all recursion scratch recycled: one frame of
/// vectors per recursion depth (stable addresses, reused across calls), so a
/// first-seen cut function costs arithmetic, not allocator traffic.
class factor_emitter {
public:
  /// Structure steps + output literal for factor_function(function); exactly
  /// what emit_factor(*factor_function(function), s) used to produce.
  std::uint32_t emit(const truth_table& function, aig_structure& s) {
    if (function.is_const0()) return aig_structure::const0_lit;
    if (function.is_const1()) return aig_structure::const1_lit;
    if (function.is_small()) {
      isop_word_into(function.word0(), function.num_vars(), cover_);
    } else {
      isop_into(function, truth_table::zeros(function.num_vars()), cover_);
    }
    return emit_cover(cover_, s, 0);
  }

private:
  struct frame {
    std::vector<cube> quotient;
    std::vector<cube> remainder;
    std::vector<std::uint32_t> lits;     ///< per-cube AND reduction
    std::vector<std::uint32_t> or_lits;  ///< OR reduction of this level
  };

  frame& at(std::size_t depth) {
    while (frames_.size() <= depth) {
      frames_.push_back(std::make_unique<frame>());
    }
    return *frames_[depth];
  }

  /// emit_factor(make_cube_expr(c)): AND of the cube's literals in ascending
  /// variable order, positive before negative.
  std::uint32_t emit_cube(const cube& c, aig_structure& s,
                          std::vector<std::uint32_t>& lits) {
    lits.clear();
    for (std::uint32_t bits = c.pos | c.neg; bits != 0; bits &= bits - 1) {
      const auto v = static_cast<unsigned>(std::countr_zero(bits));
      if (c.pos & (1u << v)) lits.push_back(v << 1);
      if (c.neg & (1u << v)) lits.push_back((v << 1) | 1u);
    }
    if (lits.empty()) return aig_structure::const1_lit;
    if (lits.size() == 1) return lits.front();
    return reduce_emitted(lits, /*is_or=*/false, s);
  }

  /// emit_factor(*factor_cover(cover)) without the tree.  Deeper recursion
  /// levels use deeper frames, so `cover` (living in the caller's frame or
  /// cover_) is never invalidated.
  std::uint32_t emit_cover(std::vector<cube>& cover, aig_structure& s,
                           std::size_t depth) {
    frame& f = at(depth);
    if (cover.empty()) return aig_structure::const0_lit;
    if (cover.size() == 1) return emit_cube(cover.front(), s, f.lits);

    unsigned var = 0;
    bool complemented = false;
    const unsigned occurrences = most_common_literal(cover, var, complemented);
    if (occurrences < 2) {
      // Cube-free: OR of the cube expressions (De Morgan over complemented
      // literals, exactly emit_factor's or_op case).
      f.or_lits.clear();
      for (const cube& c : cover) {
        f.or_lits.push_back(emit_cube(c, s, f.lits) ^ 1u);
      }
      return reduce_emitted(f.or_lits, /*is_or=*/true, s);
    }

    const std::uint32_t mask = 1u << var;
    f.quotient.clear();
    f.remainder.clear();
    for (const cube& c : cover) {
      const bool has = complemented ? (c.neg & mask) : (c.pos & mask);
      if (has) {
        cube q = c;
        if (complemented) {
          q.neg &= ~mask;
        } else {
          q.pos &= ~mask;
        }
        f.quotient.push_back(q);
      } else {
        f.remainder.push_back(c);
      }
    }

    // literal & factor(quotient); a constant quotient emitted no steps, so
    // the collapsed forms match the tree version's special cases.
    const std::uint32_t literal = (var << 1) | (complemented ? 1u : 0u);
    const std::uint32_t q_lit = emit_cover(f.quotient, s, depth + 1);
    std::uint32_t product;
    if (q_lit == aig_structure::const1_lit) {
      product = literal;
    } else if (q_lit == aig_structure::const0_lit) {
      product = aig_structure::const0_lit;
    } else {
      s.steps.push_back({literal, q_lit});
      product =
          static_cast<std::uint32_t>(s.num_leaves + s.steps.size() - 1) << 1;
    }

    if (f.remainder.empty()) return product;
    const std::uint32_t r_lit = emit_cover(f.remainder, s, depth + 1);
    f.or_lits.clear();
    f.or_lits.push_back(product ^ 1u);
    f.or_lits.push_back(r_lit ^ 1u);
    return reduce_emitted(f.or_lits, /*is_or=*/true, s);
  }

  std::vector<std::unique_ptr<frame>> frames_;
  std::vector<cube> cover_;
};

/// Collects the leaves of the maximal AND tree rooted at `n`: traversal
/// descends through non-complemented fanins that are ANDs with a single
/// fanout (descending through shared nodes would duplicate logic).
void collect_conjuncts(const aig& network, aig::node_index n,
                       const std::vector<std::uint32_t>& fanout,
                       std::vector<signal>& leaves) {
  for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
    if (!f.is_complemented() && network.is_gate(f.index()) &&
        fanout[f.index()] == 1) {
      collect_conjuncts(network, f.index(), fanout, leaves);
    } else {
      leaves.push_back(f);
    }
  }
}

}  // namespace

opt_engine& opt_engine::thread_local_engine() {
  static thread_local opt_engine engine;
  return engine;
}

const aig_structure* opt_engine::library_candidate(
    const truth_table& function) {
  const std::uint16_t key = to_uint16(function);
  if (library_state_.empty()) {
    library_state_.assign(65536, 0);
    library_slots_.resize(65536);
  }
  if (library_state_[key] == 0) {
    if (auto s = rewrite_library::instance().structure(key)) {
      library_slots_[key] = std::make_unique<aig_structure>(std::move(*s));
      library_state_[key] = 2;
    } else {
      library_state_[key] = 1;
    }
  } else {
    ++counters_.resynth_cache_hits;
  }
  return library_state_[key] == 2 ? library_slots_[key].get() : nullptr;
}

namespace {
aig_structure factor_structure_of(const truth_table& function) {
  static thread_local factor_emitter emitter;
  aig_structure s;
  s.num_leaves = function.num_vars();
  s.out_lit = emitter.emit(function, s);
  return s;
}
}  // namespace

const aig_structure* opt_engine::factoring_small(const truth_table& function) {
  // Linear-probed lookup on the packed (word, vars) key; grown at 70% load.
  if (factoring_table_.empty()) factoring_table_.resize(1024);
  const std::uint64_t word = function.word0();
  const auto vars = static_cast<std::uint8_t>(function.num_vars());
  const std::uint64_t hashed = hash_mix(0x9E3779B97F4A7C15ull ^ vars, word);
  std::size_t slot = hashed & (factoring_table_.size() - 1);
  while (factoring_table_[slot].occupied) {
    const factoring_entry& e = factoring_table_[slot];
    if (e.word == word && e.vars == vars) {
      ++counters_.resynth_cache_hits;
      return &e.structure;
    }
    slot = (slot + 1) & (factoring_table_.size() - 1);
  }
  if ((factoring_used_ + 1) * 10 > factoring_table_.size() * 7) {
    std::vector<factoring_entry> old = std::move(factoring_table_);
    factoring_table_.clear();
    factoring_table_.resize(old.size() * 2);
    for (factoring_entry& e : old) {
      if (!e.occupied) continue;
      std::size_t to = hash_mix(0x9E3779B97F4A7C15ull ^ e.vars, e.word) &
                       (factoring_table_.size() - 1);
      while (factoring_table_[to].occupied) {
        to = (to + 1) & (factoring_table_.size() - 1);
      }
      factoring_table_[to] = std::move(e);
    }
    slot = hashed & (factoring_table_.size() - 1);
    while (factoring_table_[slot].occupied) {
      slot = (slot + 1) & (factoring_table_.size() - 1);
    }
  }
  factoring_entry& e = factoring_table_[slot];
  e.word = word;
  e.vars = vars;
  e.occupied = true;
  e.structure = factor_structure_of(function);
  ++factoring_used_;
  return &e.structure;
}

const aig_structure* opt_engine::factoring_candidate(
    const truth_table& function) {
  if (function.is_small()) return factoring_small(function);
  auto it = factoring_cache_.find(function);
  if (it == factoring_cache_.end()) {
    it = factoring_cache_.emplace(function, factor_structure_of(function))
             .first;
  } else {
    ++counters_.resynth_cache_hits;
  }
  return it->second ? &*it->second : nullptr;
}

void opt_engine::note_net_arena() {
  const std::size_t bytes = net_buf_[0].memory_bytes() +
                            net_buf_[1].memory_bytes() +
                            net_buf_[2].memory_bytes();
  counters_.net_arena_bytes =
      std::max<std::uint64_t>(counters_.net_arena_bytes, bytes);
}

aig* opt_engine::finish_pass(aig* raw, aig* compacted) {
  note_net_arena();
  if (raw->mark_reachable(compact_) == 0) {
    // Nothing is dead: the raw destination already equals what a rebuild
    // would produce (same construction sequence), so it *is* the output.
    ++counters_.rebuilds_avoided;
    return raw;
  }
  raw->compact_into(*compacted, compact_);
  return compacted;
}

aig opt_engine::finalize_copy(aig& raw) {
  note_net_arena();
  if (raw.mark_reachable(compact_) == 0) {
    ++counters_.rebuilds_avoided;
    return raw;  // one copy leaves the arena
  }
  aig out;
  raw.compact_into(out, compact_);
  return out;
}

void opt_engine::rewrite_core_into(const aig& network, aig& dest,
                                   const provider_fn& provider,
                                   const cut_rewriting_params& params,
                                   cut_rewriting_stats* stats) {
  const cut_set& cuts = cuts_.enumerate(network, params.cuts);
  mffc_.attach(network);
  ++counters_.passes;
  counters_.cuts_enumerated += cuts.num_cuts();
  counters_.cut_candidates += cuts_.last_counters().candidates;
  counters_.cut_arena_bytes = std::max<std::uint64_t>(
      counters_.cut_arena_bytes, cuts.arena_bytes());

  dest.reset();
  dest.reserve(network.size());
  map_.assign(network.size(), dest.get_constant(false));
  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    map_[network.pi(i).index()] = dest.create_pi(network.pi_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    map_[network.register_at(i).output_node] = dest.create_register_output(
        network.register_at(i).init, network.register_name(i));
  }

  cut_rewriting_stats local_stats;
  network.foreach_gate([&](aig::node_index n) {
    // Default: copy the AND gate.
    const signal f0 = network.fanin0(n);
    const signal f1 = network.fanin1(n);
    const signal d0 = map_[f0.index()] ^ f0.is_complemented();
    const signal d1 = map_[f1.index()] ^ f1.is_complemented();

    int best_gain = 0;
    bool have_best = false;

    for (const cut_view c : cuts[n]) {
      const auto cut_leaves = c.leaves();
      if (cut_leaves.size() == 1 && cut_leaves[0] == n) continue;  // trivial
      const unsigned mffc = mffc_.size(n, cut_leaves);
      if (mffc == 0) continue;
      const aig_structure* candidate = provider(c.function());
      if (!candidate) continue;

      leaves_.clear();
      for (const auto leaf : cut_leaves) leaves_.push_back(map_[leaf]);
      // Pad unused leaf slots (library structures always use 4 slots).
      while (leaves_.size() < candidate->num_leaves) {
        leaves_.push_back(dest.get_constant(false));
      }

      const auto added =
          count_new_nodes(dest, *candidate, leaves_, mffc, probe_);
      if (!added) continue;
      const int gain = static_cast<int>(mffc) - static_cast<int>(*added);
      const bool accept =
          gain > best_gain ||
          (params.allow_zero_gain && gain == 0 && !have_best);
      if (accept) {
        best_gain = gain;
        have_best = true;
        best_structure_ = *candidate;
        best_leaves_.assign(leaves_.begin(), leaves_.end());
      }
    }

    if (have_best) {
      map_[n] =
          build_structure(dest, best_structure_, best_leaves_, build_scratch_);
      ++local_stats.replacements;
      local_stats.gain_estimate += static_cast<unsigned>(best_gain);
    } else {
      map_[n] = dest.create_and(d0, d1);
    }
  });

  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const signal po = network.po_signal(i);
    dest.create_po(map_[po.index()] ^ po.is_complemented(),
                   network.po_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    if (reg.input_set) {
      dest.set_register_input(i,
                              map_[reg.input.index()] ^
                                  reg.input.is_complemented());
    }
  }
  counters_.replacements += local_stats.replacements;
  counters_.mffc_queries = mffc_.num_queries();
  if (stats) *stats = local_stats;
}

aig opt_engine::cut_rewriting(const aig& network,
                              const resynthesis_fn& resynthesize,
                              const cut_rewriting_params& params,
                              cut_rewriting_stats* stats) {
  rewrite_core_into(
      network, net_buf_[0],
      [this, &resynthesize](const truth_table& f) -> const aig_structure* {
        adapted_ = resynthesize(f);
        return adapted_ ? &*adapted_ : nullptr;
      },
      params, stats);
  return finalize_copy(net_buf_[0]);
}

aig opt_engine::rewrite(const aig& network, bool allow_zero_gain) {
  cut_rewriting_params params;
  params.cuts.cut_size = 4;
  params.allow_zero_gain = allow_zero_gain;
  rewrite_core_into(
      network, net_buf_[0],
      [this](const truth_table& f) { return library_candidate(f); }, params,
      nullptr);
  return finalize_copy(net_buf_[0]);
}

aig opt_engine::refactor(const aig& network, unsigned cut_size,
                         bool allow_zero_gain) {
  cut_rewriting_params params;
  params.cuts.cut_size = cut_size;
  params.cuts.cut_limit = 8;
  params.allow_zero_gain = allow_zero_gain;
  rewrite_core_into(
      network, net_buf_[0],
      [this](const truth_table& f) { return factoring_candidate(f); }, params,
      nullptr);
  return finalize_copy(net_buf_[0]);
}

void opt_engine::balance_into(const aig& network, aig& dest) {
  network.compute_fanout_counts_into(fanout_);
  ++counters_.passes;

  dest.reset();
  dest.reserve(network.size());
  balance_map_.assign(network.size(), dest.get_constant(false));
  dest_level_.assign(1, 0);  // level of the constant node

  auto level_of = [&](signal s) { return dest_level_[s.index()]; };
  auto create_and_leveled = [&](signal a, signal b) {
    const signal r = dest.create_and(a, b);
    if (r.index() >= dest_level_.size()) {
      dest_level_.resize(r.index() + 1,
                         1 + std::max(level_of(a), level_of(b)));
    }
    return r;
  };

  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    const signal s = dest.create_pi(network.pi_name(i));
    balance_map_[network.pi(i).index()] = s;
    dest_level_.resize(s.index() + 1, 0);
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const signal s = dest.create_register_output(
        network.register_at(i).init, network.register_name(i));
    balance_map_[network.register_at(i).output_node] = s;
    dest_level_.resize(s.index() + 1, 0);
  }

  // Only rebuild tree roots: gates that are not absorbed into a parent tree.
  // A gate is absorbed when referenced exactly once via a non-complemented
  // edge from another gate; roots are everything else that is referenced.
  is_root_.assign(network.size(), false);
  network.foreach_gate([&](aig::node_index n) {
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (network.is_gate(f.index()) &&
          (f.is_complemented() || fanout_[f.index()] != 1)) {
        is_root_[f.index()] = true;
      }
    }
  });
  network.foreach_co([&](signal s, std::size_t) {
    if (network.is_gate(s.index())) is_root_[s.index()] = true;
  });

  // Min-heap on arrival levels (pair the two shallowest operands first);
  // push_heap/pop_heap on a reused vector replicate std::priority_queue.
  using item = std::pair<std::uint32_t, signal>;  // (level, signal)
  auto cmp = [](const item& a, const item& b) { return a.first > b.first; };

  network.foreach_gate([&](aig::node_index n) {
    if (!is_root_[n]) return;
    conjuncts_.clear();
    collect_conjuncts(network, n, fanout_, conjuncts_);

    heap_.clear();
    for (const signal c : conjuncts_) {
      const signal m = balance_map_[c.index()] ^ c.is_complemented();
      heap_.emplace_back(level_of(m), m);
      std::push_heap(heap_.begin(), heap_.end(), cmp);
    }
    while (heap_.size() > 1) {
      const item a = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      heap_.pop_back();
      const item b = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      heap_.pop_back();
      const signal r = create_and_leveled(a.second, b.second);
      heap_.emplace_back(level_of(r), r);
      std::push_heap(heap_.begin(), heap_.end(), cmp);
    }
    balance_map_[n] = heap_.front().second;
  });

  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const signal po = network.po_signal(i);
    dest.create_po(balance_map_[po.index()] ^ po.is_complemented(),
                   network.po_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    if (reg.input_set) {
      dest.set_register_input(
          i, balance_map_[reg.input.index()] ^ reg.input.is_complemented());
    }
  }
}

aig opt_engine::balance(const aig& network) {
  balance_into(network, net_buf_[0]);
  return finalize_copy(net_buf_[0]);
}

void opt_engine::verify_pass_seeded(const aig& before, const aig& after,
                                    const std::string& pass_name,
                                    unsigned rounds, std::uint64_t seed) {
  ++counters_.equiv_checks;
  const bool ok = equiv_.check(before, after, rounds, seed);
  const sim_counters sim = equiv_.counters();
  counters_.sim_words = sim.pattern_words;
  counters_.sim_node_evals = sim.node_evals;
  if (!ok) {
    throw std::runtime_error("optimize: pass '" + pass_name +
                             "' broke simulation equivalence");
  }
}

void opt_engine::verify_pass(const aig& before, const aig& after,
                             const std::string& pass_name, unsigned rounds) {
  // Seed varies per check so successive passes see fresh patterns but the
  // whole script stays deterministic.
  verify_pass_seeded(before, after, pass_name, rounds,
                     /*seed=*/0x51D0 + counters_.equiv_checks + 1);
}

aig opt_engine::run_pass(const aig& network, const std::string& pass) {
  if (pass == "b") return balance(network);
  if (pass == "rw") return rewrite(network, false);
  if (pass == "rwz") return rewrite(network, true);
  if (pass == "rf") return refactor(network, 6, false);
  if (pass == "rfz") return refactor(network, 6, true);
  if (pass == "clean") return network.cleanup();
  throw std::invalid_argument("run_pass: unknown pass '" + pass + "'");
}

aig opt_engine::optimize(const aig& network, const optimize_params& params,
                         optimize_stats* stats) {
  optimize_stats local;
  local.initial_gates = network.num_gates();
  local.initial_depth = network.depth();
  const opt_counters before = counters_;

  // Arena slot bookkeeping: `src` is the current pass input (initially the
  // caller's network, afterwards always one of the three recycled buffers);
  // each step picks a free slot for the raw destination and another for the
  // compaction target, then rotates — no pass allocates a network.
  const aig* src = &network;
  int src_slot = -1;
  const auto free_slot = [&](int exclude) {
    for (int i = 0; i < 3; ++i) {
      if (i != src_slot && i != exclude) return i;
    }
    return 0;  // unreachable: three slots, at most two excluded
  };

  // The historical `network.cleanup()` head of the script: skipped (and
  // counted) when the input has no dead nodes, because compaction would
  // reproduce it verbatim.
  if (network.mark_reachable(compact_) == 0) {
    ++counters_.rebuilds_avoided;
  } else {
    const int slot = free_slot(-1);
    network.compact_into(net_buf_[slot], compact_);
    src = &net_buf_[slot];
    src_slot = slot;
  }

  // Runs one pass into recycled buffers and, when requested, pins its output
  // to its input with a randomized wide-sim equivalence check.  The seed is
  // derived from this call's check ordinal, so a recycled engine uses the
  // exact pattern sequence a fresh one would.
  const auto step = [&](const char* pass_name, auto&& pass_into) {
    const int raw_slot = free_slot(-1);
    const int comp_slot = free_slot(raw_slot);
    aig* raw = &net_buf_[raw_slot];
    pass_into(*src, *raw);
    aig* out = finish_pass(raw, &net_buf_[comp_slot]);
    if (params.validate_passes) {
      const std::uint64_t ordinal =
          counters_.equiv_checks - before.equiv_checks + 1;
      verify_pass_seeded(*src, *out, pass_name, params.validate_rounds,
                         /*seed=*/0x51D0 + ordinal);
    }
    src = out;
    src_slot = (out == raw) ? raw_slot : comp_slot;
  };

  const auto rewrite_step = [&](const aig& g, aig& d, bool zero_gain) {
    cut_rewriting_params rw_params;
    rw_params.cuts.cut_size = 4;
    rw_params.allow_zero_gain = zero_gain;
    rewrite_core_into(
        g, d, [this](const truth_table& f) { return library_candidate(f); },
        rw_params, nullptr);
  };
  const auto refactor_step = [&](const aig& g, aig& d) {
    cut_rewriting_params rf_params;
    rf_params.cuts.cut_size = params.refactor_cut_size;
    rf_params.cuts.cut_limit = 8;
    rf_params.allow_zero_gain = false;
    rewrite_core_into(
        g, d, [this](const truth_table& f) { return factoring_candidate(f); },
        rf_params, nullptr);
  };

  for (unsigned round = 0; round < params.max_rounds; ++round) {
    const std::size_t gates_before = src->num_gates();
    step("b", [&](const aig& g, aig& d) { balance_into(g, d); });
    step("rw", [&](const aig& g, aig& d) { rewrite_step(g, d, false); });
    step("rf", [&](const aig& g, aig& d) { refactor_step(g, d); });
    step("b", [&](const aig& g, aig& d) { balance_into(g, d); });
    step("rw", [&](const aig& g, aig& d) {
      rewrite_step(g, d, params.zero_gain_final);
    });
    ++local.rounds;
    if (src->num_gates() >= gates_before) break;
  }

  local.final_gates = src->num_gates();
  local.final_depth = src->depth();
  local.work = counters_.delta_since(before);
  if (stats) *stats = local;
  return *src;  // the single copy that leaves the arena
}

}  // namespace xsfq
