#pragma once
/// \file balance.hpp
/// \brief AND-tree balancing for depth reduction (ABC `balance` analogue).
///
/// Collects maximal multi-input conjunctions by traversing non-complemented,
/// single-fanout AND edges and rebuilds each as a minimum-depth tree, pairing
/// the two shallowest operands first (Huffman-style on arrival levels).
/// Depth matters doubly in xSFQ: the paper's Table 5 reports logical depth
/// both as the critical path and, after splitter insertion, as the quantity
/// that sets the circuit clock frequency of pipelined designs.

#include "aig/aig.hpp"

namespace xsfq {

/// Returns a depth-balanced, cleaned-up copy of the network.
aig balance(const aig& network);

}  // namespace xsfq
