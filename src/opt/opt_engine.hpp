#pragma once
/// \file opt_engine.hpp
/// \brief Reusable optimization engine: one cut arena and one set of scratch
/// buffers shared by every balance/rewrite/refactor pass.
///
/// The free functions in balance.hpp / cut_rewriting.hpp / script.hpp build a
/// throwaway engine per call; `optimize` keeps a single engine alive across
/// all passes of all rounds.  That is the allocation-free steady state: the
/// cut arena, MFFC scratch, destination-map and leaf buffers, and the probe
/// scratch all reach their high-water mark during the first pass and are
/// recycled afterwards.  Resynthesis candidates (library structures for
/// rewrite, ISOP factorings for refactor) are memoized per cut function, so
/// repeated rounds do not re-factor the same functions.
///
/// Every engine method produces results bit-identical to the historical
/// free-function passes; tests/test_cut_engine.cpp pins that parity.

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cuts.hpp"
#include "aig/simulate.hpp"
#include "opt/aig_structure.hpp"
#include "opt/cut_rewriting.hpp"
#include "opt/script.hpp"

namespace xsfq {

class opt_engine {
public:
  opt_engine() = default;

  /// Depth balancing (see balance.hpp).
  aig balance(const aig& network);
  /// ABC-style `rewrite`: 4-cut resynthesis from the precomputed library.
  aig rewrite(const aig& network, bool allow_zero_gain = false);
  /// ABC-style `refactor`: larger cuts resynthesized via ISOP + factoring.
  aig refactor(const aig& network, unsigned cut_size = 6,
               bool allow_zero_gain = false);
  /// Generic DAG-aware rewriting with a pluggable resynthesis provider.
  aig cut_rewriting(const aig& network, const resynthesis_fn& resynthesize,
                    const cut_rewriting_params& params = {},
                    cut_rewriting_stats* stats = nullptr);
  /// Named pass dispatch ("b", "rw", "rwz", "rf", "rfz", "clean").
  aig run_pass(const aig& network, const std::string& pass);
  /// The full resyn script, reusing this engine across all rounds.
  aig optimize(const aig& network, const optimize_params& params = {},
               optimize_stats* stats = nullptr);

  /// Counters accumulated across every pass run on this engine.
  [[nodiscard]] const opt_counters& counters() const { return counters_; }

  /// Randomized sim-equivalence check between `before` and `after` on the
  /// engine's recycled wide simulator; throws std::runtime_error naming
  /// `pass_name` on a mismatch.  Used per pass when
  /// optimize_params::validate_passes is set; callers may also invoke it
  /// directly after run_pass().
  void verify_pass(const aig& before, const aig& after,
                   const std::string& pass_name, unsigned rounds = 32);

private:
  /// Internal provider contract: a borrowed candidate pointer (stable until
  /// the next provider call) or nullptr to skip the cut.
  using provider_fn = std::function<const aig_structure*(const truth_table&)>;

  aig rewrite_core(const aig& network, const provider_fn& provider,
                   const cut_rewriting_params& params,
                   cut_rewriting_stats* stats);
  const aig_structure* library_candidate(const truth_table& function);
  const aig_structure* factoring_candidate(const truth_table& function);

  cut_engine cuts_;
  mffc_calculator mffc_;
  opt_counters counters_;
  equivalence_checker equiv_;  ///< recycled wide-sim validation scratch

  // Rewriting scratch, recycled across passes.
  std::vector<signal> map_;
  std::vector<signal> leaves_;
  std::vector<signal> best_leaves_;
  aig_structure best_structure_;
  probe_scratch probe_;
  std::optional<aig_structure> adapted_;  ///< slot for resynthesis_fn adapters

  // Balance scratch.
  std::vector<std::uint32_t> dest_level_;
  std::vector<signal> balance_map_;
  std::vector<bool> is_root_;
  std::vector<signal> conjuncts_;
  std::vector<std::pair<std::uint32_t, signal>> heap_;

  // Memoized resynthesis candidates (nullopt = provider declined).
  std::unordered_map<std::uint16_t, std::optional<aig_structure>>
      library_cache_;
  std::unordered_map<truth_table, std::optional<aig_structure>>
      factoring_cache_;
};

}  // namespace xsfq
