#pragma once
/// \file opt_engine.hpp
/// \brief Reusable optimization engine: one cut arena, one set of scratch
/// buffers, and one double-buffered *network* arena shared by every
/// balance/rewrite/refactor pass.
///
/// The free functions in balance.hpp / cut_rewriting.hpp / script.hpp all run
/// on a per-thread engine (`thread_local_engine`), and `optimize` keeps that
/// engine across all passes of all rounds.  That is the allocation-free
/// steady state: the cut arena, MFFC scratch, destination-map and leaf
/// buffers, the probe scratch, *and the pass destination networks themselves*
/// reach their high-water mark during the first pass and are recycled
/// afterwards.  Passes write into a recycled shadow network (ABC-style
/// in-place restructuring: swap buffers, don't copy out), dead-node
/// compaction reuses a second recycled buffer and is skipped entirely when a
/// pass produced no dead nodes (`opt_counters::rebuilds_avoided`), and
/// resynthesis candidates (library structures for rewrite, ISOP factorings
/// for refactor) are memoized per cut function, so repeated rounds do not
/// re-factor the same functions.
///
/// Every engine method produces results bit-identical to the historical
/// copy-out passes; tests/test_cut_engine.cpp and tests/test_opt_arena.cpp
/// pin that parity.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cuts.hpp"
#include "aig/simulate.hpp"
#include "opt/aig_structure.hpp"
#include "opt/cut_rewriting.hpp"
#include "opt/script.hpp"

namespace xsfq {

class opt_engine {
public:
  opt_engine() = default;

  /// The calling thread's engine: arenas, scratch, and resynthesis caches
  /// persist for the thread's lifetime, so a worker that optimizes a whole
  /// suite reuses one set of buffers (sized by its largest circuit) across
  /// every entry.  Engine state never changes results — only allocations.
  static opt_engine& thread_local_engine();

  /// Depth balancing (see balance.hpp).
  aig balance(const aig& network);
  /// ABC-style `rewrite`: 4-cut resynthesis from the precomputed library.
  aig rewrite(const aig& network, bool allow_zero_gain = false);
  /// ABC-style `refactor`: larger cuts resynthesized via ISOP + factoring.
  aig refactor(const aig& network, unsigned cut_size = 6,
               bool allow_zero_gain = false);
  /// Generic DAG-aware rewriting with a pluggable resynthesis provider.
  aig cut_rewriting(const aig& network, const resynthesis_fn& resynthesize,
                    const cut_rewriting_params& params = {},
                    cut_rewriting_stats* stats = nullptr);
  /// Named pass dispatch ("b", "rw", "rwz", "rf", "rfz", "clean").
  aig run_pass(const aig& network, const std::string& pass);
  /// The full resyn script on this engine's recycled arena.  Ignores
  /// params.flow_jobs (partitioned parallelism lives in opt/partition.hpp,
  /// reached through the free xsfq::optimize).
  aig optimize(const aig& network, const optimize_params& params = {},
               optimize_stats* stats = nullptr);

  /// Counters accumulated across every pass run on this engine.  With a
  /// long-lived (per-thread) engine these are lifetime totals; per-call work
  /// is the delta (opt_counters::delta_since), which is what optimize() and
  /// the flow stages report.
  [[nodiscard]] const opt_counters& counters() const { return counters_; }

  /// Randomized sim-equivalence check between `before` and `after` on the
  /// engine's recycled wide simulator; throws std::runtime_error naming
  /// `pass_name` on a mismatch.  Used per pass when
  /// optimize_params::validate_passes is set; callers may also invoke it
  /// directly after run_pass().
  void verify_pass(const aig& before, const aig& after,
                   const std::string& pass_name, unsigned rounds = 32);

private:
  /// Internal provider contract: a borrowed candidate pointer (stable until
  /// the next provider call) or nullptr to skip the cut.
  using provider_fn = std::function<const aig_structure*(const truth_table&)>;

  /// One pass into a recycled destination buffer (dest is reset; output is
  /// *not* compacted — callers run finish_pass or finalize_copy).
  void balance_into(const aig& src, aig& dest);
  void rewrite_core_into(const aig& src, aig& dest, const provider_fn& provider,
                         const cut_rewriting_params& params,
                         cut_rewriting_stats* stats);

  /// Compacts `raw` into `compacted` unless nothing is dead (then the raw
  /// buffer *is* the pass output and the rebuild is skipped).  Returns the
  /// buffer holding the final pass output.
  aig* finish_pass(aig* raw, aig* compacted);
  /// Boundary form for the public one-shot methods: same decision, but the
  /// result leaves the arena as a fresh copy.
  aig finalize_copy(aig& raw);
  /// Folds the network arena's current footprint into the peak counter.
  void note_net_arena();

  /// verify_pass body with an explicit seed; optimize() derives the seed
  /// from its own check ordinal so a recycled engine reproduces the exact
  /// pattern sequence a fresh engine would use.
  void verify_pass_seeded(const aig& before, const aig& after,
                          const std::string& pass_name, unsigned rounds,
                          std::uint64_t seed);

  const aig_structure* library_candidate(const truth_table& function);
  const aig_structure* factoring_candidate(const truth_table& function);

  cut_engine cuts_;
  mffc_calculator mffc_;
  opt_counters counters_;
  equivalence_checker equiv_;  ///< recycled wide-sim validation scratch

  // The double-buffered network arena: pass destinations and compaction
  // targets rotate through these recycled networks (a third slot keeps the
  // pass input alive for validation while the next pass is prepared).
  aig net_buf_[3];
  aig::compaction_scratch compact_;

  // Rewriting scratch, recycled across passes.
  std::vector<signal> map_;
  std::vector<signal> leaves_;
  std::vector<signal> best_leaves_;
  std::vector<signal> build_scratch_;
  aig_structure best_structure_;
  probe_scratch probe_;
  std::optional<aig_structure> adapted_;  ///< slot for resynthesis_fn adapters

  // Balance scratch.
  std::vector<std::uint32_t> fanout_;
  std::vector<std::uint32_t> dest_level_;
  std::vector<signal> balance_map_;
  std::vector<bool> is_root_;
  std::vector<signal> conjuncts_;
  std::vector<std::pair<std::uint32_t, signal>> heap_;

  // Memoized resynthesis candidates.  The 16-bit rewrite key space is dense
  // enough for a flat table (lazily sized; 0 = unprobed, 1 = no candidate,
  // 2 = materialized in library_slots_) — the provider sits in the rewrite
  // inner loop, where hashing a uint16 was measurable.  Factorings of
  // single-word functions (<= 6 vars, every standard refactor cut) live in
  // an open-addressed table keyed by (table word, var count); wider
  // functions spill to a conventional map.
  std::vector<std::uint8_t> library_state_;
  std::vector<std::unique_ptr<aig_structure>> library_slots_;
  struct factoring_entry {
    std::uint64_t word = 0;
    std::uint8_t vars = 0;
    bool occupied = false;
    aig_structure structure;
  };
  std::vector<factoring_entry> factoring_table_;
  std::size_t factoring_used_ = 0;
  const aig_structure* factoring_small(const truth_table& function);
  std::unordered_map<truth_table, std::optional<aig_structure>>
      factoring_cache_;  ///< spill tier for > 6-var cut functions
};

}  // namespace xsfq
