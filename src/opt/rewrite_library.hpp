#pragma once
/// \file rewrite_library.hpp
/// \brief Precomputed minimal tree-size AIG structures for 4-input functions.
///
/// The DAG-aware rewriting pass (ABC's `rewrite` [9]) looks up each 4-cut
/// function in a library of optimized implementations.  This library is built
/// once per process by a bounded Dijkstra-style closure: starting from the
/// projection functions, functions are settled in order of increasing tree
/// cost (number of AND gates, inverters free), combining settled pairs with
/// all four input-polarity choices.  The budget cap keeps construction fast;
/// functions beyond the budget fall back to the ISOP-factoring provider at
/// rewrite time.
///
/// Tree cost ignores subgraph sharing; sharing is recovered at replacement
/// time by probing the destination network's structural hash table, which is
/// exactly the "DAG-aware" part of DAG-aware rewriting.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "opt/aig_structure.hpp"

namespace xsfq {

/// Library of optimized structures for all reachable 4-variable functions.
class rewrite_library {
public:
  /// Maximum tree cost settled by the closure.
  static constexpr unsigned default_budget = 14;

  /// Singleton accessor; the library is built on first use.
  static const rewrite_library& instance();

  /// Builds a library with a custom budget (mainly for tests).
  explicit rewrite_library(unsigned budget = default_budget);

  /// Minimal known tree cost of `function`, or nullopt if not settled.
  [[nodiscard]] std::optional<unsigned> cost(std::uint16_t function) const;

  /// Optimized structure implementing `function` over 4 leaves, or nullopt
  /// if the function was not settled within the budget.
  [[nodiscard]] std::optional<aig_structure> structure(
      std::uint16_t function) const;

  /// Number of settled functions (out of 65536).
  [[nodiscard]] std::size_t num_settled() const { return num_settled_; }
  /// Number of NPN classes fully covered (out of 222).
  [[nodiscard]] std::size_t num_classes_covered() const;

private:
  struct entry {
    std::uint8_t cost = 0xFF;       ///< 0xFF = not settled
    std::uint32_t lit0 = 0;         ///< fanin literals: (table << 1) | compl
    std::uint32_t lit1 = 0;
    bool is_and = false;            ///< false: constant / variable / alias
    bool out_compl = false;         ///< realize as complement of the AND
    std::uint8_t var = 0xFF;        ///< projection variable if not an AND
  };

  void settle_base();
  void run_closure(unsigned budget);
  std::uint32_t emit(
      std::uint16_t function, aig_structure& s,
      std::vector<std::pair<std::uint16_t, std::uint32_t>>& step_of) const;

  std::vector<entry> entries_;
  std::size_t num_settled_ = 0;
};

}  // namespace xsfq
