#pragma once
/// \file rewrite_library.hpp
/// \brief Precomputed minimal tree-size AIG structures for 4-input functions.
///
/// The DAG-aware rewriting pass (ABC's `rewrite` [9]) looks up each 4-cut
/// function in a library of optimized implementations.  This library is built
/// once per process by a bounded Dijkstra-style closure: starting from the
/// projection functions, functions are settled in order of increasing tree
/// cost (number of AND gates, inverters free), combining settled pairs with
/// all four input-polarity choices.  The budget cap keeps construction fast;
/// functions beyond the budget fall back to the ISOP-factoring provider at
/// rewrite time.
///
/// Tree cost ignores subgraph sharing; sharing is recovered at replacement
/// time by probing the destination network's structural hash table, which is
/// exactly the "DAG-aware" part of DAG-aware rewriting.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <utility>
#include <vector>

#include "opt/aig_structure.hpp"

namespace xsfq {

/// Library of optimized structures for all reachable 4-variable functions.
class rewrite_library {
public:
  /// Maximum tree cost settled by the closure.
  static constexpr unsigned default_budget = 14;

  /// Singleton accessor.  When the build bakes the precomputed table into
  /// the binary (XSFQ_BAKED_REWRITE_LIBRARY, see tools/rewrite_library_gen),
  /// this loads it in microseconds; otherwise the closure runs on first use.
  /// Either way the entries are identical — the generator runs this exact
  /// closure at build time, and a test pins the parity.
  static const rewrite_library& instance();

  /// Builds a library with a custom budget (tests, and the bake generator).
  explicit rewrite_library(unsigned budget = default_budget);

  /// Writes the settled table as a C++ .inc blob: one packed 64-bit word per
  /// function (bits 0..7 cost, 8..15 var, 16 is_and, 17 out_compl,
  /// 24..41 lit0, 42..59 lit1).  Build-time bake hook.
  void dump_baked(std::ostream& os) const;

  /// Minimal known tree cost of `function`, or nullopt if not settled.
  [[nodiscard]] std::optional<unsigned> cost(std::uint16_t function) const;

  /// Optimized structure implementing `function` over 4 leaves, or nullopt
  /// if the function was not settled within the budget.
  [[nodiscard]] std::optional<aig_structure> structure(
      std::uint16_t function) const;

  /// Number of settled functions (out of 65536).
  [[nodiscard]] std::size_t num_settled() const { return num_settled_; }
  /// Number of NPN classes fully covered (out of 222).
  [[nodiscard]] std::size_t num_classes_covered() const;

private:
  struct entry {
    std::uint8_t cost = 0xFF;       ///< 0xFF = not settled
    std::uint32_t lit0 = 0;         ///< fanin literals: (table << 1) | compl
    std::uint32_t lit1 = 0;
    bool is_and = false;            ///< false: constant / variable / alias
    bool out_compl = false;         ///< realize as complement of the AND
    std::uint8_t var = 0xFF;        ///< projection variable if not an AND
  };

  struct baked_t {};
  /// Loads the build-time baked table (defined only in baked builds).
  explicit rewrite_library(baked_t);
  /// Baked table when available, freshly built closure otherwise.
  static rewrite_library load_baked_or_build();

  void settle_base();
  void run_closure(unsigned budget);
  std::uint32_t emit(
      std::uint16_t function, aig_structure& s,
      std::vector<std::pair<std::uint16_t, std::uint32_t>>& step_of) const;

  std::vector<entry> entries_;
  /// Dense cost mirror (64 KB, cache-resident).  The closure performs ~500M
  /// settled-or-cheaper probes; reading a one-byte array instead of the 16-
  /// byte entry array keeps the whole probe table in L1/L2.
  std::vector<std::uint8_t> costs_;
  std::size_t num_settled_ = 0;
};

}  // namespace xsfq
