#include "opt/rewrite_library.hpp"

#include <stdexcept>

#include "aig/npn.hpp"

namespace xsfq {
namespace {

constexpr std::uint8_t k_var_const = 0xF0;  ///< entry::var code for constant 0

constexpr std::uint16_t k_projection[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};

}  // namespace

const rewrite_library& rewrite_library::instance() {
  static const rewrite_library library;
  return library;
}

rewrite_library::rewrite_library(unsigned budget) : entries_(65536) {
  settle_base();
  run_closure(budget);
}

void rewrite_library::settle_base() {
  auto settle_pair = [&](std::uint16_t table, std::uint8_t var) {
    entry e;
    e.cost = 0;
    e.var = var;
    entries_[table] = e;
    e.out_compl = true;
    entries_[static_cast<std::uint16_t>(~table)] = e;
    num_settled_ += 2;
  };
  settle_pair(0x0000, k_var_const);
  for (std::uint8_t v = 0; v < 4; ++v) {
    settle_pair(k_projection[v], v);
  }
}

void rewrite_library::run_closure(unsigned budget) {
  std::vector<std::vector<std::uint16_t>> wave(budget + 1);
  wave[0] = {k_projection[0], k_projection[1], k_projection[2],
             k_projection[3]};

  auto try_settle = [&](std::uint16_t f, bool p, std::uint16_t g, bool q,
                        std::uint8_t c) {
    const auto fa = static_cast<std::uint16_t>(p ? ~f : f);
    const auto fb = static_cast<std::uint16_t>(q ? ~g : g);
    const auto h = static_cast<std::uint16_t>(fa & fb);
    if (entries_[h].cost <= c) return;
    entry e;
    e.cost = c;
    e.is_and = true;
    e.lit0 = (std::uint32_t{f} << 1) | (p ? 1u : 0u);
    e.lit1 = (std::uint32_t{g} << 1) | (q ? 1u : 0u);
    entries_[h] = e;
    e.out_compl = true;
    entries_[static_cast<std::uint16_t>(~h)] = e;
    num_settled_ += 2;
    wave[c].push_back(h);
  };

  for (unsigned c = 1; c <= budget; ++c) {
    for (unsigned cf = 0; 2 * cf <= c - 1; ++cf) {
      const unsigned cg = c - 1 - cf;
      if (cg > budget) continue;
      const auto& wf = wave[cf];
      const auto& wg = wave[cg];
      for (std::size_t i = 0; i < wf.size(); ++i) {
        const std::size_t j_begin = (cf == cg) ? i : 0;
        for (std::size_t j = j_begin; j < wg.size(); ++j) {
          const std::uint16_t f = wf[i];
          const std::uint16_t g = wg[j];
          try_settle(f, false, g, false, static_cast<std::uint8_t>(c));
          try_settle(f, false, g, true, static_cast<std::uint8_t>(c));
          try_settle(f, true, g, false, static_cast<std::uint8_t>(c));
          try_settle(f, true, g, true, static_cast<std::uint8_t>(c));
        }
      }
    }
  }
}

std::optional<unsigned> rewrite_library::cost(std::uint16_t function) const {
  const entry& e = entries_[function];
  if (e.cost == 0xFF) return std::nullopt;
  return e.cost;
}

std::uint32_t rewrite_library::emit(
    std::uint16_t function, aig_structure& s,
    std::vector<std::pair<std::uint16_t, std::uint32_t>>& step_of) const {
  const entry& e = entries_[function];
  if (e.cost == 0xFF) {
    throw std::logic_error("rewrite_library::emit: unsettled function");
  }
  if (!e.is_and) {
    if (e.var == k_var_const) {
      return e.out_compl ? aig_structure::const1_lit
                         : aig_structure::const0_lit;
    }
    return (std::uint32_t{e.var} << 1) | (e.out_compl ? 1u : 0u);
  }
  // The underlying AND node's table (strip output complement for memoizing).
  const auto and_table = static_cast<std::uint16_t>(
      e.out_compl ? ~function : function);
  std::uint32_t step_index = 0;
  bool found = false;
  for (const auto& [table, index] : step_of) {
    if (table == and_table) {
      step_index = index;
      found = true;
      break;
    }
  }
  if (!found) {
    const std::uint32_t a =
        emit(static_cast<std::uint16_t>(e.lit0 >> 1), s, step_of) ^
        (e.lit0 & 1u);
    const std::uint32_t b =
        emit(static_cast<std::uint16_t>(e.lit1 >> 1), s, step_of) ^
        (e.lit1 & 1u);
    s.steps.push_back({a, b});
    step_index = static_cast<std::uint32_t>(s.steps.size()) - 1;
    step_of.emplace_back(and_table, step_index);
  }
  const auto ref =
      static_cast<std::uint32_t>(s.num_leaves + step_index);
  return (ref << 1) | (e.out_compl ? 1u : 0u);
}

std::optional<aig_structure> rewrite_library::structure(
    std::uint16_t function) const {
  if (entries_[function].cost == 0xFF) return std::nullopt;
  aig_structure s;
  s.num_leaves = 4;
  std::vector<std::pair<std::uint16_t, std::uint32_t>> step_of;
  s.out_lit = emit(function, s, step_of);
  return s;
}

std::size_t rewrite_library::num_classes_covered() const {
  std::size_t covered = 0;
  for (const std::uint16_t rep : npn4_class_representatives()) {
    if (entries_[rep].cost != 0xFF) ++covered;
  }
  return covered;
}

}  // namespace xsfq
