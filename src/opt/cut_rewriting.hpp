#pragma once
/// \file cut_rewriting.hpp
/// \brief DAG-aware cut rewriting engine (ABC `rewrite`/`refactor` analogue).
///
/// The engine walks the network in topological order, builds an optimized
/// copy, and for every gate compares the "just copy this AND" default against
/// candidate re-implementations of its cut functions.  A candidate's benefit
/// is estimated exactly as in DAG-aware rewriting [9]:
///
///     gain = MFFC(cut)  -  nodes the candidate would really add
///
/// where the added-node count is obtained by probing the destination
/// network's structural hash table (shared logic is free), and the MFFC is
/// the cone logic that dies once the root is re-expressed over the cut
/// leaves.  Candidates come from a pluggable resynthesis provider: the
/// precomputed 4-input library (rewrite) or ISOP factoring (refactor).

#include <functional>
#include <optional>

#include "aig/aig.hpp"
#include "aig/cuts.hpp"
#include "opt/aig_structure.hpp"

namespace xsfq {

/// Produces a candidate structure for a cut function, or nullopt to skip.
using resynthesis_fn =
    std::function<std::optional<aig_structure>(const truth_table&)>;

struct cut_rewriting_params {
  cut_params cuts;               ///< cut enumeration settings
  bool allow_zero_gain = false;  ///< also take gain == 0 replacements
};

struct cut_rewriting_stats {
  unsigned replacements = 0;
  unsigned gain_estimate = 0;  ///< sum of accepted gains (pre-cleanup)
};

/// Runs one rewriting pass; returns the optimized (cleaned-up) network.
aig cut_rewriting(const aig& network, const resynthesis_fn& resynthesize,
                  const cut_rewriting_params& params = {},
                  cut_rewriting_stats* stats = nullptr);

/// ABC-style `rewrite`: 4-input cuts resynthesized from the precomputed
/// minimal-structure library.
aig rewrite(const aig& network, bool allow_zero_gain = false);

/// ABC-style `refactor`: larger cuts resynthesized via ISOP + algebraic
/// factoring.
aig refactor(const aig& network, unsigned cut_size = 6,
             bool allow_zero_gain = false);

}  // namespace xsfq
