#include "opt/cut_rewriting.hpp"

#include <algorithm>

#include "opt/rewrite_library.hpp"
#include "util/factor.hpp"

namespace xsfq {
namespace {

/// Replicates a table over k <= 4 variables to the full 16-row domain.
std::uint16_t to_uint16(const truth_table& t) {
  const std::uint64_t word = t.words()[0];
  switch (t.num_vars()) {
    case 0: return (word & 1u) ? 0xFFFF : 0x0000;
    case 1: {
      const auto b = static_cast<std::uint16_t>(word & 0x3u);
      return static_cast<std::uint16_t>(b * 0x5555u);
    }
    case 2: {
      const auto b = static_cast<std::uint16_t>(word & 0xFu);
      return static_cast<std::uint16_t>(b * 0x1111u);
    }
    case 3: {
      const auto b = static_cast<std::uint16_t>(word & 0xFFu);
      return static_cast<std::uint16_t>(b * 0x0101u);
    }
    default: return static_cast<std::uint16_t>(word & 0xFFFFu);
  }
}

/// Emits a factored expression as structure steps; returns a literal.
std::uint32_t emit_factor(const factor_expr& e, aig_structure& s) {
  switch (e.op) {
    case factor_expr::kind::constant:
      return e.const_value ? aig_structure::const1_lit
                           : aig_structure::const0_lit;
    case factor_expr::kind::literal:
      return (e.var << 1) | (e.complemented ? 1u : 0u);
    case factor_expr::kind::and_op:
    case factor_expr::kind::or_op: {
      // n-ary gates become balanced binary trees; OR via De Morgan.
      const bool is_or = e.op == factor_expr::kind::or_op;
      std::vector<std::uint32_t> lits;
      lits.reserve(e.children.size());
      for (const auto& child : e.children) {
        std::uint32_t lit = emit_factor(*child, s);
        if (is_or) lit ^= 1u;  // complement for De Morgan
        lits.push_back(lit);
      }
      while (lits.size() > 1) {
        std::vector<std::uint32_t> next;
        next.reserve((lits.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
          s.steps.push_back({lits[i], lits[i + 1]});
          next.push_back(
              static_cast<std::uint32_t>(s.num_leaves + s.steps.size() - 1)
              << 1);
        }
        if (lits.size() % 2) next.push_back(lits.back());
        lits = std::move(next);
      }
      return is_or ? (lits.front() ^ 1u) : lits.front();
    }
  }
  return aig_structure::const0_lit;
}

}  // namespace

aig cut_rewriting(const aig& network, const resynthesis_fn& resynthesize,
                  const cut_rewriting_params& params,
                  cut_rewriting_stats* stats) {
  const auto cuts = enumerate_cuts(network, params.cuts);
  const auto fanout = network.compute_fanout_counts();

  aig dest;
  std::vector<signal> map(network.size(), dest.get_constant(false));
  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    map[network.pi(i).index()] = dest.create_pi(network.pi_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    map[network.register_at(i).output_node] = dest.create_register_output(
        network.register_at(i).init, network.register_name(i));
  }

  cut_rewriting_stats local_stats;
  network.foreach_gate([&](aig::node_index n) {
    // Default: copy the AND gate.
    const signal f0 = network.fanin0(n);
    const signal f1 = network.fanin1(n);
    const signal d0 = map[f0.index()] ^ f0.is_complemented();
    const signal d1 = map[f1.index()] ^ f1.is_complemented();

    int best_gain = 0;
    std::optional<aig_structure> best_structure;
    std::vector<signal> best_leaves;

    for (const cut& c : cuts[n]) {
      if (c.size() == 1 && c.leaves[0] == n) continue;  // trivial cut
      const unsigned mffc = mffc_size(network, n, c.leaves, fanout);
      if (mffc == 0) continue;
      auto candidate = resynthesize(c.function);
      if (!candidate) continue;

      std::vector<signal> leaves;
      leaves.reserve(candidate->num_leaves);
      for (const auto leaf : c.leaves) leaves.push_back(map[leaf]);
      // Pad unused leaf slots (library structures always use 4 slots).
      while (leaves.size() < candidate->num_leaves) {
        leaves.push_back(dest.get_constant(false));
      }

      const auto added = count_new_nodes(dest, *candidate, leaves, mffc);
      if (!added) continue;
      const int gain = static_cast<int>(mffc) - static_cast<int>(*added);
      const bool accept =
          gain > best_gain ||
          (params.allow_zero_gain && gain == 0 && !best_structure);
      if (accept) {
        best_gain = gain;
        best_structure = std::move(candidate);
        best_leaves = std::move(leaves);
      }
    }

    if (best_structure) {
      map[n] = build_structure(dest, *best_structure, best_leaves);
      ++local_stats.replacements;
      local_stats.gain_estimate += static_cast<unsigned>(best_gain);
    } else {
      map[n] = dest.create_and(d0, d1);
    }
  });

  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const signal po = network.po_signal(i);
    dest.create_po(map[po.index()] ^ po.is_complemented(),
                   network.po_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    if (reg.input_set) {
      dest.set_register_input(i,
                              map[reg.input.index()] ^
                                  reg.input.is_complemented());
    }
  }
  if (stats) *stats = local_stats;
  return dest.cleanup();
}

aig rewrite(const aig& network, bool allow_zero_gain) {
  const rewrite_library& library = rewrite_library::instance();
  cut_rewriting_params params;
  params.cuts.cut_size = 4;
  params.allow_zero_gain = allow_zero_gain;
  return cut_rewriting(
      network,
      [&library](const truth_table& f) { return library.structure(to_uint16(f)); },
      params);
}

aig refactor(const aig& network, unsigned cut_size, bool allow_zero_gain) {
  cut_rewriting_params params;
  params.cuts.cut_size = cut_size;
  params.cuts.cut_limit = 8;
  params.allow_zero_gain = allow_zero_gain;
  return cut_rewriting(
      network,
      [](const truth_table& f) -> std::optional<aig_structure> {
        aig_structure s;
        s.num_leaves = f.num_vars();
        s.out_lit = emit_factor(*factor_function(f), s);
        return s;
      },
      params);
}

}  // namespace xsfq
