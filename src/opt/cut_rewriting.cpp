#include "opt/cut_rewriting.hpp"

#include "opt/opt_engine.hpp"

namespace xsfq {

// The pass implementations live in opt_engine, which recycles the cut arena
// and every scratch buffer between calls; these wrappers are the one-shot
// entry points.  optimize() (script.cpp) holds one engine across all rounds.

aig cut_rewriting(const aig& network, const resynthesis_fn& resynthesize,
                  const cut_rewriting_params& params,
                  cut_rewriting_stats* stats) {
  opt_engine engine;
  return engine.cut_rewriting(network, resynthesize, params, stats);
}

aig rewrite(const aig& network, bool allow_zero_gain) {
  opt_engine engine;
  return engine.rewrite(network, allow_zero_gain);
}

aig refactor(const aig& network, unsigned cut_size, bool allow_zero_gain) {
  opt_engine engine;
  return engine.refactor(network, cut_size, allow_zero_gain);
}

}  // namespace xsfq
