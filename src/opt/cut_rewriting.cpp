#include "opt/cut_rewriting.hpp"

#include "opt/opt_engine.hpp"

namespace xsfq {

// The pass implementations live in opt_engine, which recycles the cut arena,
// the double-buffered network arena, and every scratch buffer between calls;
// these wrappers run on the calling thread's persistent engine (engine state
// never changes results, only allocations — see opt_engine.hpp).

aig cut_rewriting(const aig& network, const resynthesis_fn& resynthesize,
                  const cut_rewriting_params& params,
                  cut_rewriting_stats* stats) {
  return opt_engine::thread_local_engine().cut_rewriting(network, resynthesize,
                                                         params, stats);
}

aig rewrite(const aig& network, bool allow_zero_gain) {
  return opt_engine::thread_local_engine().rewrite(network, allow_zero_gain);
}

aig refactor(const aig& network, unsigned cut_size, bool allow_zero_gain) {
  return opt_engine::thread_local_engine().refactor(network, cut_size,
                                                    allow_zero_gain);
}

}  // namespace xsfq
