#pragma once
/// \file partition.hpp
/// \brief Intra-flow parallel optimization: partitioned balance/rewrite.
///
/// One large circuit normally occupies a single batch_runner worker for its
/// whole flow.  `optimize_partitioned` splits the gate array into
/// `optimize_params::flow_jobs` contiguous topological regions (disjoint by
/// construction — every gate belongs to exactly one region, and a region's
/// fanins point only at combinational inputs or earlier regions), runs the
/// full resyn script on each region concurrently, and merges the optimized
/// regions back in region order with global structural hashing.
///
/// Determinism contract: the result is a pure function of (circuit,
/// optimize_params) — regions are optimized independently on isolated
/// engines and merged in a fixed order, so running the subtasks on one
/// thread or sixteen produces byte-identical networks
/// (tests/test_opt_arena.cpp pins partition counts 1..8).  The partition
/// count itself *does* change the result (cuts cannot cross region
/// boundaries, and exported boundary nodes must be preserved), which is why
/// flow_jobs joins the flow-options fingerprint.

#include <memory>
#include <mutex>
#include <unordered_map>

#include "aig/aig.hpp"
#include "opt/script.hpp"

namespace xsfq {

/// How a partitioned run divided the work (observability for benches/tests).
struct partition_info {
  unsigned partitions = 0;           ///< regions actually used (after clamping)
  std::size_t boundary_signals = 0;  ///< gate outputs exported across regions
  std::size_t region_cache_hits = 0;    ///< regions served from the cache
  std::size_t region_cache_misses = 0;  ///< regions optimized live
};

/// Cross-run cache of optimized regions, keyed by (extracted subnetwork
/// content hash, digest of the optimization parameters the region runs
/// under).  This is the engine of ECO resynthesis: with fixed-grain
/// partitioning (optimize_params::partition_grain) a position-stable edit
/// leaves every untouched region's extracted content byte-identical, so a
/// warm cache reduces re-optimization to the one or two regions the edit
/// actually dirtied.  Correctness never depends on it — region optimization
/// is a pure function of the extracted subnetwork, so a hit replays exactly
/// the bytes a live run would produce (the stored optimize_stats make even
/// the work counters match).
///
/// Thread-safe; entries are shared const so concurrent flows can merge from
/// the same stored region.  Bounded by `max_entries` with arbitrary-entry
/// eviction (eviction affects time, never bytes).
class region_cache {
 public:
  struct entry {
    aig optimized;
    optimize_stats stats;  ///< the live run's counters, replayed on a hit
  };

  explicit region_cache(std::size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  std::shared_ptr<const entry> lookup(std::uint64_t key);
  void store(std::uint64_t key, aig optimized, const optimize_stats& stats);

  struct counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< lookups that found nothing
  };
  [[nodiscard]] counters counts() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const entry>> entries_;
  std::size_t max_entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// The region count optimize_partitioned will actually use for a network of
/// `num_gates` gates when `flow_jobs` regions are requested (small circuits
/// clamp to fewer regions).  Exposed so cache keys can fingerprint the
/// *effective* count: requests whose clamp coincides share cache entries.
unsigned effective_partition_count(std::size_t num_gates, unsigned flow_jobs);

/// The resyn script over concurrent regions: `params.flow_jobs` proportional
/// shares, or — when params.partition_grain > 0 — fixed regions of that many
/// gates whose boundaries depend on the network alone (the ECO mode; see
/// region_cache).  Subtasks run through params.executor when set (the flow
/// layer passes the batch_runner pool) and inline otherwise — identical
/// results either way.  Regions validate their own passes when
/// params.validate_passes is set, and the merged network is additionally
/// checked against the input.  Small networks are clamped to fewer regions
/// (deterministically, by gate count); a clamp to one region is exactly the
/// sequential script.
aig optimize_partitioned(const aig& network, const optimize_params& params,
                         optimize_stats* stats = nullptr,
                         partition_info* info = nullptr);

}  // namespace xsfq
