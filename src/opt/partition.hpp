#pragma once
/// \file partition.hpp
/// \brief Intra-flow parallel optimization: partitioned balance/rewrite.
///
/// One large circuit normally occupies a single batch_runner worker for its
/// whole flow.  `optimize_partitioned` splits the gate array into
/// `optimize_params::flow_jobs` contiguous topological regions (disjoint by
/// construction — every gate belongs to exactly one region, and a region's
/// fanins point only at combinational inputs or earlier regions), runs the
/// full resyn script on each region concurrently, and merges the optimized
/// regions back in region order with global structural hashing.
///
/// Determinism contract: the result is a pure function of (circuit,
/// optimize_params) — regions are optimized independently on isolated
/// engines and merged in a fixed order, so running the subtasks on one
/// thread or sixteen produces byte-identical networks
/// (tests/test_opt_arena.cpp pins partition counts 1..8).  The partition
/// count itself *does* change the result (cuts cannot cross region
/// boundaries, and exported boundary nodes must be preserved), which is why
/// flow_jobs joins the flow-options fingerprint.

#include "aig/aig.hpp"
#include "opt/script.hpp"

namespace xsfq {

/// How a partitioned run divided the work (observability for benches/tests).
struct partition_info {
  unsigned partitions = 0;           ///< regions actually used (after clamping)
  std::size_t boundary_signals = 0;  ///< gate outputs exported across regions
};

/// The region count optimize_partitioned will actually use for a network of
/// `num_gates` gates when `flow_jobs` regions are requested (small circuits
/// clamp to fewer regions).  Exposed so cache keys can fingerprint the
/// *effective* count: requests whose clamp coincides share cache entries.
unsigned effective_partition_count(std::size_t num_gates, unsigned flow_jobs);

/// The resyn script over `params.flow_jobs` concurrent regions.  Subtasks run
/// through params.executor when set (the flow layer passes the batch_runner
/// pool) and inline otherwise — identical results either way.  Regions
/// validate their own passes when params.validate_passes is set, and the
/// merged network is additionally checked against the input.  Small networks
/// are clamped to fewer regions (deterministically, by gate count); a clamp
/// to one region is exactly the sequential script.
aig optimize_partitioned(const aig& network, const optimize_params& params,
                         optimize_stats* stats = nullptr,
                         partition_info* info = nullptr);

}  // namespace xsfq
