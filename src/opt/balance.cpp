#include "opt/balance.hpp"

#include "opt/opt_engine.hpp"

namespace xsfq {

aig balance(const aig& network) {
  opt_engine engine;
  return engine.balance(network);
}

}  // namespace xsfq
