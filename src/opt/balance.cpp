#include "opt/balance.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace xsfq {
namespace {

/// Collects the leaves of the maximal AND tree rooted at `n`: traversal
/// descends through non-complemented fanins that are ANDs with a single
/// fanout (descending through shared nodes would duplicate logic).
void collect_conjuncts(const aig& network, aig::node_index n,
                       const std::vector<std::uint32_t>& fanout,
                       std::vector<signal>& leaves) {
  for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
    if (!f.is_complemented() && network.is_gate(f.index()) &&
        fanout[f.index()] == 1) {
      collect_conjuncts(network, f.index(), fanout, leaves);
    } else {
      leaves.push_back(f);
    }
  }
}

}  // namespace

aig balance(const aig& network) {
  const auto fanout = network.compute_fanout_counts();

  aig dest;
  std::vector<signal> map(network.size(), dest.get_constant(false));
  std::vector<std::uint32_t> dest_level;  // level of every dest node
  dest_level.resize(1, 0);

  auto level_of = [&](signal s) { return dest_level[s.index()]; };
  auto create_and_leveled = [&](signal a, signal b) {
    const signal r = dest.create_and(a, b);
    if (r.index() >= dest_level.size()) {
      dest_level.resize(r.index() + 1,
                        1 + std::max(level_of(a), level_of(b)));
    }
    return r;
  };

  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    const signal s = dest.create_pi(network.pi_name(i));
    map[network.pi(i).index()] = s;
    dest_level.resize(s.index() + 1, 0);
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const signal s = dest.create_register_output(
        network.register_at(i).init, network.register_name(i));
    map[network.register_at(i).output_node] = s;
    dest_level.resize(s.index() + 1, 0);
  }

  std::vector<bool> needed(network.size(), false);
  // Only rebuild tree roots: gates that are not absorbed into a parent tree.
  // A gate is absorbed when referenced exactly once via a non-complemented
  // edge from another gate; roots are everything else that is referenced.
  std::vector<bool> is_root(network.size(), false);
  network.foreach_gate([&](aig::node_index n) {
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (network.is_gate(f.index()) &&
          (f.is_complemented() || fanout[f.index()] != 1)) {
        is_root[f.index()] = true;
      }
    }
  });
  network.foreach_co([&](signal s, std::size_t) {
    if (network.is_gate(s.index())) is_root[s.index()] = true;
  });

  network.foreach_gate([&](aig::node_index n) {
    if (!is_root[n]) return;
    std::vector<signal> conjuncts;
    collect_conjuncts(network, n, fanout, conjuncts);

    // Map to destination signals and combine shallowest-first.
    using item = std::pair<std::uint32_t, signal>;  // (level, signal)
    auto cmp = [](const item& a, const item& b) { return a.first > b.first; };
    std::priority_queue<item, std::vector<item>, decltype(cmp)> queue(cmp);
    for (const signal c : conjuncts) {
      const signal m = map[c.index()] ^ c.is_complemented();
      queue.emplace(level_of(m), m);
    }
    while (queue.size() > 1) {
      const item a = queue.top();
      queue.pop();
      const item b = queue.top();
      queue.pop();
      const signal r = create_and_leveled(a.second, b.second);
      queue.emplace(level_of(r), r);
    }
    map[n] = queue.top().second;
  });

  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const signal po = network.po_signal(i);
    dest.create_po(map[po.index()] ^ po.is_complemented(), network.po_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    if (reg.input_set) {
      dest.set_register_input(
          i, map[reg.input.index()] ^ reg.input.is_complemented());
    }
  }
  return dest.cleanup();
}

}  // namespace xsfq
