#include "opt/balance.hpp"

#include "opt/opt_engine.hpp"

namespace xsfq {

aig balance(const aig& network) {
  return opt_engine::thread_local_engine().balance(network);
}

}  // namespace xsfq
