#include "opt/aig_structure.hpp"

#include <stdexcept>

namespace xsfq {

truth_table aig_structure::evaluate() const {
  std::vector<truth_table> value;
  value.reserve(num_leaves + steps.size());
  for (unsigned v = 0; v < num_leaves; ++v) {
    value.push_back(truth_table::nth_var(num_leaves, v));
  }
  auto resolve = [&](std::uint32_t lit) -> truth_table {
    if (lit == const0_lit) return truth_table::zeros(num_leaves);
    if (lit == const1_lit) return truth_table::ones(num_leaves);
    const truth_table& t = value[lit >> 1];
    return (lit & 1u) ? ~t : t;
  };
  for (const auto& st : steps) {
    value.push_back(resolve(st.lit0) & resolve(st.lit1));
  }
  return resolve(out_lit);
}

std::optional<unsigned> count_new_nodes(const aig& dest, const aig_structure& s,
                                        const std::vector<signal>& leaf_signals,
                                        unsigned budget) {
  probe_scratch scratch;
  return count_new_nodes(dest, s, leaf_signals, budget, scratch);
}

std::optional<unsigned> count_new_nodes(const aig& dest, const aig_structure& s,
                                        const std::vector<signal>& leaf_signals,
                                        unsigned budget,
                                        probe_scratch& scratch) {
  if (leaf_signals.size() != s.num_leaves) {
    throw std::invalid_argument("count_new_nodes: leaf count mismatch");
  }
  // A slot is either a concrete signal in `dest` (known) or "virtual"
  // (the step would create a new node).
  auto& value = scratch.value;
  value.assign(s.num_leaves + s.steps.size(), {false, signal{}});
  for (unsigned v = 0; v < s.num_leaves; ++v) {
    value[v] = {true, leaf_signals[v]};
  }
  unsigned added = 0;
  for (std::size_t i = 0; i < s.steps.size(); ++i) {
    const auto& st = s.steps[i];
    // Constants cannot appear as step fanins (providers fold them away).
    const auto& a = value[st.lit0 >> 1];
    const auto& b = value[st.lit1 >> 1];
    auto& out = value[s.num_leaves + i];
    if (a.first && b.first) {
      if (const auto found = dest.find_and(a.second ^ (st.lit0 & 1u),
                                           b.second ^ (st.lit1 & 1u))) {
        out = {true, *found};
        continue;
      }
    }
    out = {false, signal{}};
    if (++added > budget) return std::nullopt;
  }
  return added;
}

signal build_structure(aig& dest, const aig_structure& s,
                       const std::vector<signal>& leaf_signals) {
  std::vector<signal> scratch;
  return build_structure(dest, s, leaf_signals, scratch);
}

signal build_structure(aig& dest, const aig_structure& s,
                       const std::vector<signal>& leaf_signals,
                       std::vector<signal>& scratch) {
  if (leaf_signals.size() != s.num_leaves) {
    throw std::invalid_argument("build_structure: leaf count mismatch");
  }
  auto& value = scratch;
  value.clear();
  value.reserve(s.num_leaves + s.steps.size());
  value.insert(value.end(), leaf_signals.begin(), leaf_signals.end());
  auto resolve = [&](std::uint32_t lit) -> signal {
    if (lit == aig_structure::const0_lit) return dest.get_constant(false);
    if (lit == aig_structure::const1_lit) return dest.get_constant(true);
    return value[lit >> 1] ^ ((lit & 1u) != 0);
  };
  for (const auto& st : s.steps) {
    value.push_back(dest.create_and(resolve(st.lit0), resolve(st.lit1)));
  }
  return resolve(s.out_lit);
}

}  // namespace xsfq
