#pragma once
/// \file script.hpp
/// \brief Canned optimization scripts (ABC `resyn2` analogue).
///
/// Sec. 4.1 of the paper runs Yosys + unmodified ABC; the equivalent here is
/// `optimize`, which iterates balance / rewrite / refactor until the AIG node
/// count converges.  Because LA-FA pairs are isomorphic to AIG nodes
/// (Sec. 3.1.3), this directly minimizes the xSFQ cell count.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace xsfq {

class region_cache;  // opt/partition.hpp

/// Runs every closure to completion before returning (closures must not
/// throw; callers wrap their work to capture errors).  The flow layer backs
/// this with the batch_runner's work-stealing pool so one large circuit can
/// occupy several workers; when empty, partitions run inline on the calling
/// thread with identical results.
using subtask_runner =
    std::function<void(std::vector<std::function<void()>>&&)>;

struct optimize_params {
  unsigned max_rounds = 4;       ///< resyn rounds before giving up
  bool zero_gain_final = true;   ///< allow zero-gain rewrites in last round
  unsigned refactor_cut_size = 6;
  /// Checks randomized simulation equivalence after every pass (wide
  /// sim_engine, scratch recycled across checks); throws std::runtime_error
  /// on a mismatch.  Costs one pair of network sweeps per
  /// equivalence_checker-width (32 rounds) chunk per pass, so the default
  /// of 32 rounds uses exactly one full-width chunk.
  bool validate_passes = false;
  unsigned validate_rounds = 32;  ///< x64 patterns per per-pass check
  /// Intra-flow parallelism: > 1 partitions the network into that many
  /// disjoint topological regions optimized concurrently and merged
  /// deterministically (opt/partition.hpp).  The partition count changes the
  /// result (cuts cannot cross region boundaries), so it joins the flow
  /// fingerprint; 1 is the exact legacy single-region pipeline.
  unsigned flow_jobs = 1;
  /// Fixed-grain partitioning (ECO mode): > 0 cuts the gate array into
  /// regions of exactly this many gates (the last region absorbs the
  /// remainder) instead of flow_jobs equal shares.  Region boundaries are
  /// then a pure function of the network alone, so a position-stable edit
  /// (aig/edit.hpp) leaves every untouched region's extracted content
  /// identical — which is what makes the region result cache hit.  The grain
  /// changes the optimized network exactly like a partition count does, so
  /// it replaces flow_jobs in the fingerprint; flow_jobs degrades to a pure
  /// parallelism knob in grain mode.
  unsigned partition_grain = 0;
  /// Cross-run cache of optimized regions (opt/partition.hpp), consulted per
  /// extracted region keyed by its content hash.  Hits replay the stored
  /// region verbatim; because region optimization is a pure function of the
  /// extracted subnetwork, a hit can change wall-clock but never bytes.
  /// Not part of the fingerprint.  nullptr = no region caching.
  region_cache* regions = nullptr;
  /// Executes the partition subtasks; empty runs them inline.  Not part of
  /// the fingerprint: the executor affects wall-clock only, never results.
  subtask_runner executor;
};

/// Work/allocation counters accumulated by an opt_engine across every pass
/// it runs (see opt/opt_engine.hpp).  Surfaced per stage by src/flow.
struct opt_counters {
  std::uint64_t passes = 0;             ///< transform passes executed
  std::uint64_t cuts_enumerated = 0;    ///< cuts committed to the arena
  std::uint64_t cut_candidates = 0;     ///< leaf-set merge attempts
  std::uint64_t mffc_queries = 0;       ///< MFFC cone evaluations
  std::uint64_t replacements = 0;       ///< accepted resynthesis rewrites
  std::uint64_t resynth_cache_hits = 0; ///< candidate structures served from cache
  std::uint64_t cut_arena_bytes = 0;    ///< peak footprint of the cut arena
  std::uint64_t equiv_checks = 0;       ///< per-pass sim-equivalence checks
  std::uint64_t sim_words = 0;          ///< 64-pattern words swept by checks
  std::uint64_t sim_node_evals = 0;     ///< gate x word evaluations by checks
  std::uint64_t net_arena_bytes = 0;    ///< peak footprint of the network arenas
  std::uint64_t rebuilds_avoided = 0;   ///< pass outputs taken without a rebuild

  /// This record minus `before` for the monotonic work counters; the peak
  /// footprint fields (cut_arena_bytes, net_arena_bytes) keep their current
  /// high-water value.  The one delta rule shared by optimize(), the flow
  /// pass stage, and the partition merge.
  [[nodiscard]] opt_counters delta_since(const opt_counters& before) const;
};

struct optimize_stats {
  std::size_t initial_gates = 0;
  std::size_t final_gates = 0;
  unsigned initial_depth = 0;
  unsigned final_depth = 0;
  unsigned rounds = 0;
  opt_counters work;  ///< engine counters summed over all passes/rounds
};

/// Runs rounds of (balance; rewrite; refactor; balance; rewrite) until the
/// gate count stops improving.  Functional equivalence is preserved by
/// construction; tests double-check with simulation.  The per-thread engine
/// (its double-buffered network arena, cut arena, and resynthesis caches) is
/// recycled across every pass of every round *and* across calls, so the
/// steady state allocates nothing per node, cut, or candidate.  With
/// params.flow_jobs > 1 the network is partitioned and the regions are
/// optimized concurrently (opt/partition.hpp).
aig optimize(const aig& network, const optimize_params& params = {},
             optimize_stats* stats = nullptr);

/// Runs a single named pass: "b" (balance), "rw" (rewrite), "rwz",
/// "rf" (refactor), "rfz", "clean".  Throws on unknown names.
aig run_pass(const aig& network, const std::string& pass);

}  // namespace xsfq
