#pragma once
/// \file script.hpp
/// \brief Canned optimization scripts (ABC `resyn2` analogue).
///
/// Sec. 4.1 of the paper runs Yosys + unmodified ABC; the equivalent here is
/// `optimize`, which iterates balance / rewrite / refactor until the AIG node
/// count converges.  Because LA-FA pairs are isomorphic to AIG nodes
/// (Sec. 3.1.3), this directly minimizes the xSFQ cell count.

#include <string>

#include "aig/aig.hpp"

namespace xsfq {

struct optimize_params {
  unsigned max_rounds = 4;       ///< resyn rounds before giving up
  bool zero_gain_final = true;   ///< allow zero-gain rewrites in last round
  unsigned refactor_cut_size = 6;
};

struct optimize_stats {
  std::size_t initial_gates = 0;
  std::size_t final_gates = 0;
  unsigned initial_depth = 0;
  unsigned final_depth = 0;
  unsigned rounds = 0;
};

/// Runs rounds of (balance; rewrite; refactor; balance; rewrite) until the
/// gate count stops improving.  Functional equivalence is preserved by
/// construction; tests double-check with simulation.
aig optimize(const aig& network, const optimize_params& params = {},
             optimize_stats* stats = nullptr);

/// Runs a single named pass: "b" (balance), "rw" (rewrite), "rwz",
/// "rf" (refactor), "rfz", "clean".  Throws on unknown names.
aig run_pass(const aig& network, const std::string& pass);

}  // namespace xsfq
