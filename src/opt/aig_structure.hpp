#pragma once
/// \file aig_structure.hpp
/// \brief A small standalone AIG fragment used as a resynthesis candidate.
///
/// Cut-based optimization replaces the cone above a cut with a fresh
/// implementation of the cut function.  Candidates are described abstractly
/// as a list of AND steps over the cut leaves so that they can be *probed*
/// against the destination network's structural hash table (counting how many
/// nodes the replacement would really add) before anything is built.

#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "util/truth_table.hpp"

namespace xsfq {

/// Literal address space of a structure: values 0..num_leaves-1 refer to the
/// cut leaves, num_leaves+i refers to the output of step i.  The LSB of a
/// literal is the complement flag: literal = (ref << 1) | complemented.
struct aig_structure {
  struct step {
    std::uint32_t lit0 = 0;
    std::uint32_t lit1 = 0;
  };

  unsigned num_leaves = 0;
  std::vector<step> steps;
  /// Output literal; may reference a leaf directly (buffer/inverter) or be
  /// one of the constant literals below.
  std::uint32_t out_lit = 0;

  static constexpr std::uint32_t const0_lit = 0xFFFFFFFEu;
  static constexpr std::uint32_t const1_lit = 0xFFFFFFFFu;

  [[nodiscard]] unsigned num_steps() const {
    return static_cast<unsigned>(steps.size());
  }

  /// Evaluates the structure as a truth table over `num_leaves` variables
  /// (used by tests and by the library builder for self-checks).
  [[nodiscard]] truth_table evaluate() const;
};

/// Reusable scratch for count_new_nodes: one (known, signal) slot per leaf
/// and step, recycled across probes so the rewriting hot loop does not
/// allocate per candidate.
struct probe_scratch {
  std::vector<std::pair<bool, signal>> value;
};

/// Counts how many new AND nodes realizing `s` on `leaf_signals` would add to
/// `dest`, reusing existing nodes through the structural hash table.  Stops
/// early and returns nullopt if the count would exceed `budget`.
std::optional<unsigned> count_new_nodes(const aig& dest, const aig_structure& s,
                                        const std::vector<signal>& leaf_signals,
                                        unsigned budget);

/// Allocation-free variant backed by caller-owned scratch.
std::optional<unsigned> count_new_nodes(const aig& dest, const aig_structure& s,
                                        const std::vector<signal>& leaf_signals,
                                        unsigned budget,
                                        probe_scratch& scratch);

/// Builds the structure in `dest` and returns the output signal.
signal build_structure(aig& dest, const aig_structure& s,
                       const std::vector<signal>& leaf_signals);

/// Allocation-free variant backed by caller-owned scratch (one call per
/// accepted replacement sits on the rewriting hot path).
signal build_structure(aig& dest, const aig_structure& s,
                       const std::vector<signal>& leaf_signals,
                       std::vector<signal>& scratch);

}  // namespace xsfq
