#include "opt/partition.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <vector>

#include "aig/simulate.hpp"
#include "opt/opt_engine.hpp"

namespace xsfq {
namespace {

/// Below this many gates per region, extra regions cost more (boundary
/// freezing, merge overhead) than they parallelize; the clamp keeps tiny
/// circuits on the sequential path deterministically.
constexpr std::size_t min_gates_per_region = 64;

struct region {
  aig sub;                               ///< extracted subnetwork
  std::vector<aig::node_index> inputs;   ///< parent nodes feeding sub-PIs
  std::vector<aig::node_index> outputs;  ///< exported parent gates (= sub-POs)
  aig optimized;
  optimize_stats stats;
  std::exception_ptr error;
};

}  // namespace

unsigned effective_partition_count(std::size_t num_gates, unsigned flow_jobs) {
  const unsigned regions_wanted = std::max(1u, flow_jobs);
  const auto by_size = static_cast<unsigned>(
      std::max<std::size_t>(1, num_gates / min_gates_per_region));
  return std::min(regions_wanted, by_size);
}

aig optimize_partitioned(const aig& network, const optimize_params& params,
                         optimize_stats* stats, partition_info* info) {
  const std::size_t num_gates = network.num_gates();
  const unsigned P = effective_partition_count(num_gates, params.flow_jobs);
  if (P <= 1) {
    if (info) *info = {1, 0};
    return opt_engine::thread_local_engine().optimize(network, params, stats);
  }

  // ----- plan: contiguous topological regions over the gate array ----------
  // chunk[n] = region of gate n (-1 for CIs/constant).  Contiguity over the
  // topologically sorted node array guarantees a region's fanins resolve to
  // combinational inputs or strictly earlier regions.
  std::vector<std::int32_t> chunk(network.size(), -1);
  {
    std::size_t ordinal = 0;
    network.foreach_gate([&](aig::node_index n) {
      chunk[n] = static_cast<std::int32_t>(
          std::min<std::size_t>(P - 1, ordinal * P / num_gates));
      ++ordinal;
    });
  }

  // A gate is exported when a different region or a combinational output
  // consumes it; exported gates become sub-POs their region must preserve.
  std::vector<std::uint8_t> exported(network.size(), 0);
  network.foreach_gate([&](aig::node_index n) {
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      const aig::node_index m = f.index();
      if (chunk[m] >= 0 && chunk[m] != chunk[n]) exported[m] = 1;
    }
  });
  network.foreach_co([&](signal s, std::size_t) {
    if (network.is_gate(s.index())) exported[s.index()] = 1;
  });

  // ----- extract one subnetwork per region ----------------------------------
  std::vector<region> regions(P);
  std::vector<signal> sub_map(network.size());
  std::vector<std::int32_t> seen(network.size(), -1);
  for (unsigned k = 0; k < P; ++k) {
    region& r = regions[k];
    const auto in_region = [&](aig::node_index n) {
      return chunk[n] == static_cast<std::int32_t>(k);
    };
    network.foreach_gate([&](aig::node_index n) {
      if (!in_region(n)) return;
      for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
        const aig::node_index m = f.index();
        if (m != 0 && !in_region(m) && seen[m] != static_cast<std::int32_t>(k)) {
          seen[m] = static_cast<std::int32_t>(k);
          r.inputs.push_back(m);
        }
      }
    });
    for (const aig::node_index m : r.inputs) {
      sub_map[m] = r.sub.create_pi();
    }
    network.foreach_gate([&](aig::node_index n) {
      if (!in_region(n)) return;
      const auto resolve = [&](signal f) {
        return (f.index() == 0 ? r.sub.get_constant(false)
                               : sub_map[f.index()]) ^
               f.is_complemented();
      };
      sub_map[n] =
          r.sub.create_and(resolve(network.fanin0(n)), resolve(network.fanin1(n)));
    });
    network.foreach_gate([&](aig::node_index n) {
      if (!in_region(n) || !exported[n]) return;
      r.outputs.push_back(n);
      r.sub.create_po(sub_map[n]);
    });
  }

  // ----- optimize every region (inline or on the caller's executor) --------
  optimize_params sub_params = params;
  sub_params.flow_jobs = 1;
  sub_params.executor = nullptr;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(P);
  for (unsigned k = 0; k < P; ++k) {
    region* r = &regions[k];
    tasks.push_back([r, sub_params] {
      try {
        r->optimized = optimize(r->sub, sub_params, &r->stats);
      } catch (...) {
        r->error = std::current_exception();
      }
    });
  }
  if (params.executor) {
    params.executor(std::move(tasks));
  } else {
    for (auto& task : tasks) task();
  }
  for (const region& r : regions) {
    if (r.error) std::rethrow_exception(r.error);
  }

  // ----- deterministic merge, region order, global strash -------------------
  aig merged;
  std::vector<signal> merged_map(network.size(), merged.get_constant(false));
  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    merged_map[network.pi(i).index()] = merged.create_pi(network.pi_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    merged_map[network.register_at(i).output_node] =
        merged.create_register_output(network.register_at(i).init,
                                      network.register_name(i));
  }
  std::vector<signal> replay;
  for (unsigned k = 0; k < P; ++k) {
    const region& r = regions[k];
    const aig& opt = r.optimized;
    replay.assign(opt.size(), merged.get_constant(false));
    for (std::size_t i = 0; i < opt.num_pis(); ++i) {
      replay[opt.pi(i).index()] = merged_map[r.inputs[i]];
    }
    opt.foreach_gate([&](aig::node_index n) {
      const signal f0 = opt.fanin0(n);
      const signal f1 = opt.fanin1(n);
      replay[n] = merged.create_and(replay[f0.index()] ^ f0.is_complemented(),
                                    replay[f1.index()] ^ f1.is_complemented());
    });
    for (std::size_t i = 0; i < r.outputs.size(); ++i) {
      const signal po = opt.po_signal(i);
      merged_map[r.outputs[i]] = replay[po.index()] ^ po.is_complemented();
    }
  }
  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const signal po = network.po_signal(i);
    merged.create_po(merged_map[po.index()] ^ po.is_complemented(),
                     network.po_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    if (reg.input_set) {
      merged.set_register_input(i, merged_map[reg.input.index()] ^
                                       reg.input.is_complemented());
    }
  }
  aig result = merged.cleanup();

  if (params.validate_passes &&
      !random_equivalent(network, result, params.validate_rounds,
                         /*seed=*/0xA11Cu + P)) {
    throw std::runtime_error(
        "optimize: partition merge broke simulation equivalence");
  }

  if (stats) {
    optimize_stats total;
    total.initial_gates = network.num_gates();
    total.initial_depth = network.depth();
    total.final_gates = result.num_gates();
    total.final_depth = result.depth();
    for (const region& r : regions) {
      total.rounds = std::max(total.rounds, r.stats.rounds);
      opt_counters& w = total.work;
      const opt_counters& rw = r.stats.work;
      w.passes += rw.passes;
      w.cuts_enumerated += rw.cuts_enumerated;
      w.cut_candidates += rw.cut_candidates;
      w.mffc_queries += rw.mffc_queries;
      w.replacements += rw.replacements;
      w.resynth_cache_hits += rw.resynth_cache_hits;
      w.equiv_checks += rw.equiv_checks;
      w.sim_words += rw.sim_words;
      w.sim_node_evals += rw.sim_node_evals;
      w.rebuilds_avoided += rw.rebuilds_avoided;
      w.cut_arena_bytes = std::max(w.cut_arena_bytes, rw.cut_arena_bytes);
      w.net_arena_bytes = std::max(w.net_arena_bytes, rw.net_arena_bytes);
    }
    *stats = total;
  }
  if (info) {
    std::size_t boundary = 0;
    for (const region& r : regions) boundary += r.outputs.size();
    *info = {P, boundary};
  }
  return result;
}

}  // namespace xsfq
