#include "opt/partition.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <vector>

#include "aig/simulate.hpp"
#include "opt/opt_engine.hpp"
#include "util/hash.hpp"
#include "util/trace.hpp"

namespace xsfq {
namespace {

/// Below this many gates per region, extra regions cost more (boundary
/// freezing, merge overhead) than they parallelize; the clamp keeps tiny
/// circuits on the sequential path deterministically.
constexpr std::size_t min_gates_per_region = 64;

struct region {
  aig sub;                               ///< extracted subnetwork
  std::vector<aig::node_index> inputs;   ///< parent nodes feeding sub-PIs
  std::vector<aig::node_index> outputs;  ///< exported parent gates (= sub-POs)
  aig optimized;
  optimize_stats stats;
  std::shared_ptr<const region_cache::entry> cached;  ///< hit, when non-null
  std::uint64_t cache_key = 0;
  std::exception_ptr error;
};

/// Digest of the parameters a region is optimized under — the second half of
/// the region-cache key.  Deliberately excludes anything that cannot change
/// the optimized region's bytes (grain, flow_jobs, executor): identical
/// extracted subnetworks share entries across partition shapes.
std::uint64_t sub_params_digest(const optimize_params& params) {
  std::uint64_t h = 0x5E617C0DE5ull;
  h = hash_mix(h, params.max_rounds);
  h = hash_mix(h, params.zero_gain_final);
  h = hash_mix(h, params.refactor_cut_size);
  h = hash_mix(h, params.validate_passes);
  h = hash_mix(h, params.validate_passes ? params.validate_rounds : 0);
  return h;
}

}  // namespace

std::shared_ptr<const region_cache::entry> region_cache::lookup(
    std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void region_cache::store(std::uint64_t key, aig optimized,
                         const optimize_stats& stats) {
  auto e = std::make_shared<entry>();
  e->optimized = std::move(optimized);
  e->stats = stats;
  std::lock_guard lock(mutex_);
  if (entries_.size() >= max_entries_ && !entries_.contains(key)) {
    entries_.erase(entries_.begin());  // arbitrary victim: time, never bytes
  }
  entries_[key] = std::move(e);
}

region_cache::counters region_cache::counts() const {
  std::lock_guard lock(mutex_);
  return {hits_, misses_};
}

std::size_t region_cache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void region_cache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

unsigned effective_partition_count(std::size_t num_gates, unsigned flow_jobs) {
  const unsigned regions_wanted = std::max(1u, flow_jobs);
  const auto by_size = static_cast<unsigned>(
      std::max<std::size_t>(1, num_gates / min_gates_per_region));
  return std::min(regions_wanted, by_size);
}

aig optimize_partitioned(const aig& network, const optimize_params& params,
                         optimize_stats* stats, partition_info* info) {
  const std::size_t num_gates = network.num_gates();
  const std::size_t grain = params.partition_grain;
  const unsigned P =
      grain > 0 ? static_cast<unsigned>(std::max<std::size_t>(
                      1, num_gates / std::max<std::size_t>(1, grain)))
                : effective_partition_count(num_gates, params.flow_jobs);
  if (P <= 1) {
    if (info) *info = {1, 0, 0, 0};
    return opt_engine::thread_local_engine().optimize(network, params, stats);
  }

  // ----- plan: contiguous topological regions over the gate array ----------
  // chunk[n] = region of gate n (-1 for CIs/constant).  Contiguity over the
  // topologically sorted node array guarantees a region's fanins resolve to
  // combinational inputs or strictly earlier regions.  Grain mode assigns
  // fixed-size regions by gate ordinal — a pure function of the network, so
  // edited and freshly submitted copies of the same circuit partition
  // identically — while the legacy mode deals P proportional shares.
  // Each region's gates occupy one contiguous node-index window
  // [begin_k, end_k); the extraction loops below walk windows, not the whole
  // array, so planning + extraction stay O(n) regardless of P.
  std::vector<std::int32_t> chunk(network.size(), -1);
  std::vector<aig::node_index> window_begin(P, 0);
  std::vector<aig::node_index> window_end(P, 0);
  std::vector<std::size_t> region_gates(P, 0);
  {
    std::size_t ordinal = 0;
    network.foreach_gate([&](aig::node_index n) {
      const auto k = static_cast<unsigned>(
          grain > 0 ? std::min<std::size_t>(P - 1, ordinal / grain)
                    : std::min<std::size_t>(P - 1, ordinal * P / num_gates));
      chunk[n] = static_cast<std::int32_t>(k);
      if (region_gates[k]++ == 0) window_begin[k] = n;
      window_end[k] = n + 1;
      ++ordinal;
    });
  }

  // A gate is exported when a different region or a combinational output
  // consumes it; exported gates become sub-POs their region must preserve.
  std::vector<std::uint8_t> exported(network.size(), 0);
  network.foreach_gate([&](aig::node_index n) {
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      const aig::node_index m = f.index();
      if (chunk[m] >= 0 && chunk[m] != chunk[n]) exported[m] = 1;
    }
  });
  network.foreach_co([&](signal s, std::size_t) {
    if (network.is_gate(s.index())) exported[s.index()] = 1;
  });

  // ----- extract one subnetwork per region ----------------------------------
  // The expensive part of extraction is building the sub-AIG (structural
  // hashing per gate).  Its construction is a pure function of the region's
  // normalized window encoding — inputs numbered in first-encounter order,
  // gates by window ordinal — so the region-cache key is computed by hashing
  // that encoding directly, and the sub-AIG itself is only materialized on a
  // cache miss.  On the ECO hot path every clean region skips construction
  // entirely; identical windows produce identical keys by construction.
  optimize_params sub_params = params;
  sub_params.flow_jobs = 1;
  sub_params.partition_grain = 0;
  sub_params.regions = nullptr;
  sub_params.executor = nullptr;
  const std::uint64_t digest = sub_params_digest(sub_params);
  std::size_t cache_hits = 0;

  std::vector<region> regions(P);
  std::vector<signal> sub_map(network.size());
  std::vector<std::uint32_t> local(network.size(), 0);
  std::vector<std::int32_t> seen(network.size(), -1);
  for (unsigned k = 0; k < P; ++k) {
    region& r = regions[k];
    const auto self = static_cast<std::int32_t>(k);
    for (aig::node_index n = window_begin[k]; n < window_end[k]; ++n) {
      if (!network.is_gate(n)) continue;
      for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
        const aig::node_index m = f.index();
        if (m != 0 && chunk[m] != self && seen[m] != self) {
          seen[m] = self;
          r.inputs.push_back(m);
        }
      }
    }
    // Normalized window encoding: const0 = 0, inputs 1..I in discovery
    // order, window gates I+1.. by ordinal.  The fanin id/complement
    // sequence plus the exported-gate list fully determine the sub-AIG the
    // builder below would construct.
    for (std::size_t i = 0; i < r.inputs.size(); ++i) {
      local[r.inputs[i]] = static_cast<std::uint32_t>(i + 1);
    }
    const auto encode = [&](signal f) {
      const std::uint32_t id = f.index() == 0 ? 0 : local[f.index()];
      return (static_cast<std::uint64_t>(id) << 1) |
             (f.is_complemented() ? 1u : 0u);
    };
    std::uint64_t key = hash_mix(digest, r.inputs.size());
    std::uint32_t next_local = static_cast<std::uint32_t>(r.inputs.size());
    for (aig::node_index n = window_begin[k]; n < window_end[k]; ++n) {
      if (!network.is_gate(n)) continue;
      local[n] = ++next_local;
      key = hash_mix(key, encode(network.fanin0(n)));
      key = hash_mix(key, encode(network.fanin1(n)));
    }
    key = hash_mix(key, 0xEC0Full);  // gates | exports separator
    for (aig::node_index n = window_begin[k]; n < window_end[k]; ++n) {
      if (!network.is_gate(n) || !exported[n]) continue;
      r.outputs.push_back(n);
      key = hash_mix(key, local[n]);
    }
    r.cache_key = key;
    if (params.regions) {
      r.cached = params.regions->lookup(r.cache_key);
      if (r.cached) {
        ++cache_hits;
        continue;  // merge replays the cached result; no sub-AIG needed
      }
    }
    r.sub.reserve(r.inputs.size() + region_gates[k]);
    for (const aig::node_index m : r.inputs) {
      sub_map[m] = r.sub.create_pi();
    }
    for (aig::node_index n = window_begin[k]; n < window_end[k]; ++n) {
      if (!network.is_gate(n)) continue;
      const auto resolve = [&](signal f) {
        return (f.index() == 0 ? r.sub.get_constant(false)
                               : sub_map[f.index()]) ^
               f.is_complemented();
      };
      sub_map[n] =
          r.sub.create_and(resolve(network.fanin0(n)), resolve(network.fanin1(n)));
    }
    for (const aig::node_index n : r.outputs) {
      r.sub.create_po(sub_map[n]);
    }
  }

  // ----- optimize every region (inline or on the caller's executor) --------
  // Region optimization is a pure function of (extracted sub, sub_params),
  // so cached regions replay the stored result — identical bytes, identical
  // work counters — and only cache misses spend optimizer time.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(P);
  // Region re-opt spans attribute to the requesting trace even when the
  // executor scatters the tasks across pool threads: capture the context
  // here (this code runs on the request's thread) and reinstall per task.
  const trace::trace_id trace_ctx = trace::current();
  for (unsigned k = 0; k < P; ++k) {
    region* r = &regions[k];
    if (r->cached) continue;
    region_cache* cache = params.regions;
    tasks.push_back([r, cache, sub_params, trace_ctx] {
      trace::context_scope tscope(trace_ctx);
      const std::uint64_t start_us = trace::now_us();
      try {
        r->optimized = optimize(r->sub, sub_params, &r->stats);
        if (cache) cache->store(r->cache_key, r->optimized, r->stats);
      } catch (...) {
        r->error = std::current_exception();
      }
      trace::record("region_reopt", start_us, trace::now_us() - start_us);
    });
  }
  if (params.executor && !tasks.empty()) {
    params.executor(std::move(tasks));
  } else {
    for (auto& task : tasks) task();
  }
  for (const region& r : regions) {
    if (r.error) std::rethrow_exception(r.error);
  }

  // ----- deterministic merge, region order, global strash -------------------
  aig merged;
  merged.reserve(network.size());
  std::vector<signal> merged_map(network.size(), merged.get_constant(false));
  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    merged_map[network.pi(i).index()] = merged.create_pi(network.pi_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    merged_map[network.register_at(i).output_node] =
        merged.create_register_output(network.register_at(i).init,
                                      network.register_name(i));
  }
  std::vector<signal> replay;
  for (unsigned k = 0; k < P; ++k) {
    const region& r = regions[k];
    const aig& opt = r.cached ? r.cached->optimized : r.optimized;
    replay.assign(opt.size(), merged.get_constant(false));
    for (std::size_t i = 0; i < opt.num_pis(); ++i) {
      replay[opt.pi(i).index()] = merged_map[r.inputs[i]];
    }
    opt.foreach_gate([&](aig::node_index n) {
      const signal f0 = opt.fanin0(n);
      const signal f1 = opt.fanin1(n);
      replay[n] = merged.create_and(replay[f0.index()] ^ f0.is_complemented(),
                                    replay[f1.index()] ^ f1.is_complemented());
    });
    for (std::size_t i = 0; i < r.outputs.size(); ++i) {
      const signal po = opt.po_signal(i);
      merged_map[r.outputs[i]] = replay[po.index()] ^ po.is_complemented();
    }
  }
  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const signal po = network.po_signal(i);
    merged.create_po(merged_map[po.index()] ^ po.is_complemented(),
                     network.po_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    if (reg.input_set) {
      merged.set_register_input(i, merged_map[reg.input.index()] ^
                                       reg.input.is_complemented());
    }
  }
  // mark_reachable's zero return certifies that compaction would reproduce
  // `merged` verbatim, so the fully-live case (the common one on the ECO hot
  // path) skips the rebuild copy entirely.
  static thread_local aig::compaction_scratch compaction;
  aig result;
  if (merged.mark_reachable(compaction) == 0) {
    result = std::move(merged);
  } else {
    merged.compact_into(result, compaction);
  }

  if (params.validate_passes &&
      !random_equivalent(network, result, params.validate_rounds,
                         /*seed=*/0xA11Cu + P)) {
    throw std::runtime_error(
        "optimize: partition merge broke simulation equivalence");
  }

  if (stats) {
    optimize_stats total;
    total.initial_gates = network.num_gates();
    total.initial_depth = network.depth();
    total.final_gates = result.num_gates();
    total.final_depth = result.depth();
    for (const region& r : regions) {
      const optimize_stats& rs = r.cached ? r.cached->stats : r.stats;
      total.rounds = std::max(total.rounds, rs.rounds);
      opt_counters& w = total.work;
      const opt_counters& rw = rs.work;
      w.passes += rw.passes;
      w.cuts_enumerated += rw.cuts_enumerated;
      w.cut_candidates += rw.cut_candidates;
      w.mffc_queries += rw.mffc_queries;
      w.replacements += rw.replacements;
      w.resynth_cache_hits += rw.resynth_cache_hits;
      w.equiv_checks += rw.equiv_checks;
      w.sim_words += rw.sim_words;
      w.sim_node_evals += rw.sim_node_evals;
      w.rebuilds_avoided += rw.rebuilds_avoided;
      w.cut_arena_bytes = std::max(w.cut_arena_bytes, rw.cut_arena_bytes);
      w.net_arena_bytes = std::max(w.net_arena_bytes, rw.net_arena_bytes);
    }
    *stats = total;
  }
  if (info) {
    std::size_t boundary = 0;
    for (const region& r : regions) boundary += r.outputs.size();
    *info = {P, boundary, cache_hits, P - cache_hits};
  }
  return result;
}

}  // namespace xsfq
