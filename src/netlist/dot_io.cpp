#include "netlist/dot_io.hpp"

#include <ostream>
#include <sstream>

namespace xsfq {

void write_dot(const aig& network, std::ostream& os,
               const std::string& graph_name) {
  os << "digraph " << graph_name << " {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=circle];\n";
  network.foreach_ci([&](signal s, std::size_t i) {
    const bool is_reg = network.is_register_output(s.index());
    const std::string label =
        is_reg ? network.register_name(i - network.num_pis())
               : network.pi_name(i);
    os << "  n" << s.index() << " [shape=box,label=\"" << label << "\"];\n";
  });
  network.foreach_gate([&](aig::node_index n) {
    os << "  n" << n << " [label=\"" << n << "\"];\n";
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      os << "  n" << f.index() << " -> n" << n;
      if (f.is_complemented()) os << " [style=dotted]";
      os << ";\n";
    }
  });
  network.foreach_co([&](signal s, std::size_t i) {
    const bool is_po = i < network.num_pos();
    const std::string label = is_po
                                  ? network.po_name(i)
                                  : network.register_name(i - network.num_pos()) +
                                        ".d";
    os << "  o" << i << " [shape=box,label=\"" << label << "\"];\n";
    os << "  n" << s.index() << " -> o" << i;
    if (s.is_complemented()) os << " [style=dotted]";
    os << ";\n";
  });
  os << "}\n";
}

std::string write_dot_string(const aig& network,
                             const std::string& graph_name) {
  std::ostringstream os;
  write_dot(network, os, graph_name);
  return os.str();
}

}  // namespace xsfq
