#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xsfq {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("bench: line " + std::to_string(line) + ": " +
                              message);
}

/// Input-hardening caps shared with the BLIF reader: real netlists carry
/// identifiers of a few dozen characters, so anything kilobytes long (or
/// containing NUL — text formats never do) is fuzz/attack input, rejected
/// with the same typed error any other malformed line gets.
constexpr std::size_t max_identifier_len = 4096;

void check_line(const std::string& line, std::size_t line_number) {
  if (line.find('\0') != std::string::npos) {
    fail(line_number, "NUL byte in input");
  }
}

const std::string& check_identifier(const std::string& name,
                                    std::size_t line_number) {
  if (name.size() > max_identifier_len) {
    fail(line_number, "identifier exceeds " +
                          std::to_string(max_identifier_len) + " characters");
  }
  return name;
}

gate_kind kind_from_name(const std::string& name, std::size_t line) {
  const std::string u = upper(name);
  if (u == "AND") return gate_kind::and_gate;
  if (u == "OR") return gate_kind::or_gate;
  if (u == "NAND") return gate_kind::nand_gate;
  if (u == "NOR") return gate_kind::nor_gate;
  if (u == "XOR") return gate_kind::xor_gate;
  if (u == "XNOR") return gate_kind::xnor_gate;
  if (u == "NOT" || u == "INV") return gate_kind::inverter;
  if (u == "BUF" || u == "BUFF") return gate_kind::buffer;
  if (u == "MUX") return gate_kind::mux_gate;
  if (u == "DFF") return gate_kind::dff;
  if (u == "CONST0" || u == "GND") return gate_kind::constant0;
  if (u == "CONST1" || u == "VDD") return gate_kind::constant1;
  fail(line, "unknown gate type '" + name + "'");
}

}  // namespace

netlist read_bench(std::istream& is, const std::string& model_name) {
  netlist result;
  result.set_name(model_name);
  std::string raw_line;
  std::size_t line_number = 0;
  std::vector<std::string> pending_outputs;

  while (std::getline(is, raw_line)) {
    ++line_number;
    check_line(raw_line, line_number);
    std::string line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::string u = upper(line);
    if (u.starts_with("INPUT(") || u.starts_with("OUTPUT(")) {
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (close == std::string::npos || close < open) {
        fail(line_number, "missing ')'");
      }
      const std::string net = trim(line.substr(open + 1, close - open - 1));
      if (net.empty()) fail(line_number, "empty port name");
      check_identifier(net, line_number);
      if (u.starts_with("INPUT(")) {
        result.add_input(net);
      } else {
        // Defer output marking: the net may not exist yet.
        pending_outputs.push_back(net);
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_number, "expected '='");
    const std::string target =
        check_identifier(trim(line.substr(0, eq)), line_number);
    std::string rhs = trim(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      fail(line_number, "expected GATE(args)");
    }
    const gate_kind kind = kind_from_name(trim(rhs.substr(0, open)),
                                          line_number);
    const std::string args = rhs.substr(open + 1, close - open - 1);

    std::vector<netlist::net_index> fanins;
    bool init = false;
    std::stringstream ss(args);
    std::string token;
    std::vector<std::string> arg_names;
    while (std::getline(ss, token, ',')) {
      token = trim(token);
      if (!token.empty()) {
        arg_names.push_back(check_identifier(token, line_number));
      }
    }
    if (kind == gate_kind::dff) {
      if (arg_names.empty() || arg_names.size() > 2) {
        fail(line_number, "DFF takes 1 or 2 arguments");
      }
      fanins.push_back(result.net_by_name(arg_names[0]));
      if (arg_names.size() == 2) {
        if (arg_names[1] != "0" && arg_names[1] != "1") {
          fail(line_number, "DFF init must be 0 or 1");
        }
        init = arg_names[1] == "1";
      }
    } else {
      for (const auto& a : arg_names) {
        fanins.push_back(result.net_by_name(a));
      }
      const std::size_t arity = fanins.size();
      const bool unary = kind == gate_kind::inverter ||
                         kind == gate_kind::buffer;
      const bool nullary = kind == gate_kind::constant0 ||
                           kind == gate_kind::constant1;
      if (unary && arity != 1) fail(line_number, "unary gate needs 1 input");
      if (nullary && arity != 0) fail(line_number, "constant takes no input");
      if (kind == gate_kind::mux_gate && arity != 3) {
        fail(line_number, "MUX needs 3 inputs (sel, then, else)");
      }
      if (!unary && !nullary && kind != gate_kind::mux_gate && arity < 2) {
        fail(line_number, "gate needs at least 2 inputs");
      }
    }
    result.add_gate(kind, std::move(fanins), target, init);
  }

  for (const auto& net : pending_outputs) {
    result.mark_output(result.net_by_name(net));
  }
  if (!result.is_fully_driven()) {
    throw std::invalid_argument("bench: undriven nets referenced");
  }
  return result;
}

netlist read_bench_string(const std::string& text,
                          const std::string& model_name) {
  std::istringstream is(text);
  return read_bench(is, model_name);
}

netlist read_bench_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::invalid_argument("bench: cannot open " + path);
  auto model = path;
  if (const auto slash = model.find_last_of('/'); slash != std::string::npos) {
    model = model.substr(slash + 1);
  }
  if (const auto dot = model.find_last_of('.'); dot != std::string::npos) {
    model = model.substr(0, dot);
  }
  return read_bench(is, model);
}

void write_bench(const netlist& circuit, std::ostream& os) {
  os << "# " << circuit.name() << " — written by xsfq\n";
  for (const auto in : circuit.inputs()) {
    os << "INPUT(" << circuit.net_name(in) << ")\n";
  }
  for (const auto out : circuit.outputs()) {
    os << "OUTPUT(" << circuit.net_name(out) << ")\n";
  }
  for (const auto& g : circuit.gates()) {
    os << circuit.net_name(g.output) << " = " << gate_kind_name(g.kind) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) os << ", ";
      os << circuit.net_name(g.fanins[i]);
    }
    if (g.kind == gate_kind::dff && g.init) os << ", 1";
    os << ")\n";
  }
}

std::string write_bench_string(const netlist& circuit) {
  std::ostringstream os;
  write_bench(circuit, os);
  return os.str();
}

void write_bench_file(const netlist& circuit, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::invalid_argument("bench: cannot open " + path);
  write_bench(circuit, os);
}

}  // namespace xsfq
