#pragma once
/// \file netlist.hpp
/// \brief Technology-independent gate-level netlist (frontend interchange).
///
/// This plays the role of the Yosys frontend in the paper's flow: RTL-ish
/// circuit descriptions (BENCH/BLIF files, or the programmatic benchmark
/// generators) arrive as generic gate netlists and are lowered to the AIG
/// for optimization and xSFQ mapping.  Arbitrary-arity gates are supported;
/// DFFs model the sequential elements of ISCAS89-style circuits.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"

namespace xsfq {

enum class gate_kind : std::uint8_t {
  constant0,
  constant1,
  buffer,
  inverter,
  and_gate,
  or_gate,
  nand_gate,
  nor_gate,
  xor_gate,
  xnor_gate,
  mux_gate,  ///< fanins: select, then-input, else-input
  dff,       ///< fanins: data input; init value in `init`
};

/// Human-readable gate kind name ("AND", "DFF", ...), BENCH spelling.
const char* gate_kind_name(gate_kind kind);

/// A named net driven by a primary input or a gate.
class netlist {
public:
  using net_index = std::uint32_t;

  struct gate {
    gate_kind kind = gate_kind::constant0;
    std::vector<net_index> fanins;
    net_index output = 0;
    bool init = false;  ///< DFF initial value
  };

  /// Creates a primary-input net.
  net_index add_input(const std::string& name);
  /// Declares an existing net as a primary output.
  void mark_output(net_index net);
  /// Creates a gate driving a fresh net named `name`.
  net_index add_gate(gate_kind kind, std::vector<net_index> fanins,
                     const std::string& name, bool init = false);

  /// Finds a net by name; creates a placeholder net if unknown (resolved
  /// when its driver is later declared — BENCH files are unordered).
  net_index net_by_name(const std::string& name);
  [[nodiscard]] bool has_net(const std::string& name) const;

  [[nodiscard]] std::size_t num_nets() const { return net_names_.size(); }
  [[nodiscard]] std::size_t num_inputs() const { return inputs_.size(); }
  [[nodiscard]] std::size_t num_outputs() const { return outputs_.size(); }
  [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }
  /// Number of DFF gates.
  [[nodiscard]] std::size_t num_dffs() const;

  [[nodiscard]] const std::vector<net_index>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<net_index>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] const std::vector<gate>& gates() const { return gates_; }
  [[nodiscard]] const std::string& net_name(net_index n) const {
    return net_names_[n];
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string model_name) { name_ = std::move(model_name); }

  /// True when every non-input net has a driver.
  [[nodiscard]] bool is_fully_driven() const;

  /// Lowers the netlist to an AIG (DFFs become registers).  Throws if some
  /// net has no driver.
  [[nodiscard]] aig to_aig() const;

private:
  std::string name_ = "top";
  std::vector<std::string> net_names_;
  std::vector<net_index> inputs_;
  std::vector<net_index> outputs_;
  std::vector<gate> gates_;
  std::vector<std::int32_t> driver_;  ///< gate index driving net, -1 if none,
                                      ///< -2 if primary input
  std::unordered_map<std::string, net_index> by_name_;

  net_index add_net(const std::string& name);
};

/// Extracts a netlist view of an AIG (AND/INV gates, DFFs for registers);
/// used by the file writers.
netlist netlist_from_aig(const aig& network, const std::string& model_name);

}  // namespace xsfq
