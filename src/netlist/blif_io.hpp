#pragma once
/// \file blif_io.hpp
/// \brief Reader/writer for the Berkeley Logic Interchange Format (BLIF).
///
/// BLIF is the distribution format of the EPFL benchmark suite used in the
/// paper's evaluation (Tables 3 and 4).  Supported subset: .model, .inputs,
/// .outputs, .names (SOP covers with '-' don't-cares), .latch (re/fe/ah/al/as
/// and clock fields optional, init 0/1/2/3), .end.  SOP covers are lowered to
/// AND/OR/NOT gates while parsing.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace xsfq {

netlist read_blif(std::istream& is);
netlist read_blif_string(const std::string& text);
netlist read_blif_file(const std::string& path);

/// Writes the netlist as BLIF (.names covers; DFFs as .latch).
void write_blif(const netlist& circuit, std::ostream& os);
std::string write_blif_string(const netlist& circuit);
void write_blif_file(const netlist& circuit, const std::string& path);

}  // namespace xsfq
