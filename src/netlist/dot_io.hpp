#pragma once
/// \file dot_io.hpp
/// \brief Graphviz DOT export for AIGs (documentation and debugging aid,
/// e.g. to render the Figure 4 full-adder AIG).

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace xsfq {

/// Writes the AIG as a DOT digraph; dotted edges mark complemented fanins
/// (the paper's Figure 4 convention).
void write_dot(const aig& network, std::ostream& os,
               const std::string& graph_name = "aig");
std::string write_dot_string(const aig& network,
                             const std::string& graph_name = "aig");

}  // namespace xsfq
