#pragma once
/// \file bench_io.hpp
/// \brief Reader/writer for the ISCAS BENCH netlist format.
///
/// BENCH is the distribution format of the ISCAS85/ISCAS89 benchmark suites
/// used in the paper's evaluation (Sec. 4.1).  The dialect accepted here:
///
///   INPUT(a)  OUTPUT(f)
///   f = AND(a, b)          # also OR/NAND/NOR/XOR/XNOR/NOT/BUFF/MUX
///   q = DFF(d)             # optional DFF(d, 1) sets the initial value
///   # comments and blank lines are ignored
///
/// Gates may be listed in any order (forward references are legal).

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace xsfq {

/// Parses BENCH text; throws std::invalid_argument with a line number on
/// malformed input.
netlist read_bench(std::istream& is, const std::string& model_name = "top");
netlist read_bench_string(const std::string& text,
                          const std::string& model_name = "top");
netlist read_bench_file(const std::string& path);

/// Writes a netlist in BENCH format (multi-input gates emitted natively).
void write_bench(const netlist& circuit, std::ostream& os);
std::string write_bench_string(const netlist& circuit);
void write_bench_file(const netlist& circuit, const std::string& path);

}  // namespace xsfq
