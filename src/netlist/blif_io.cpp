#include "netlist/blif_io.hpp"

#include <bit>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xsfq {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("blif: line " + std::to_string(line) + ": " +
                              message);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::stringstream ss(line);
  std::string token;
  while (ss >> token) tokens.push_back(token);
  return tokens;
}

/// Input-hardening cap shared with the bench reader: identifiers kilobytes
/// long are fuzz/attack input, not netlists — reject with the same typed
/// error any malformed line gets instead of growing name tables unboundedly.
constexpr std::size_t max_identifier_len = 4096;

/// A parsed .names block before lowering.
struct names_block {
  std::vector<std::string> nets;  ///< inputs then output
  std::vector<std::pair<std::string, char>> cover;  ///< (input part, out bit)
  std::size_t line = 0;
};

/// Lowers one SOP cover to AND/OR/NOT netlist gates.
void lower_names(netlist& result, const names_block& block,
                 std::size_t& fresh) {
  const std::size_t num_inputs = block.nets.size() - 1;
  const std::string& output = block.nets.back();

  // Constant covers.
  if (num_inputs == 0) {
    const bool value = !block.cover.empty() && block.cover.front().second == '1';
    result.add_gate(value ? gate_kind::constant1 : gate_kind::constant0, {},
                    output);
    return;
  }

  // The output polarity of a BLIF cover is uniform (all lines share the same
  // output bit); a '0' output lists the offset instead of the onset.
  bool onset = true;
  if (!block.cover.empty()) onset = block.cover.front().second == '1';

  auto fresh_net = [&](const char* tag) {
    // Skip names already present (e.g. when re-reading our own output).
    std::string name;
    do {
      name = "_blif" + std::to_string(fresh++) + tag;
    } while (result.has_net(name));
    return name;
  };

  std::vector<netlist::net_index> product_nets;
  for (const auto& [mask, out_bit] : block.cover) {
    if (mask.size() != num_inputs) {
      fail(block.line, "cover width mismatch in .names " + output);
    }
    std::vector<netlist::net_index> literals;
    for (std::size_t i = 0; i < num_inputs; ++i) {
      if (mask[i] == '-') continue;
      netlist::net_index n = result.net_by_name(block.nets[i]);
      if (mask[i] == '0') {
        const auto inv = result.add_gate(gate_kind::inverter, {n},
                                         fresh_net("n"));
        n = inv;
      } else if (mask[i] != '1') {
        fail(block.line, "bad cover character");
      }
      literals.push_back(n);
    }
    if (literals.empty()) {
      // Tautological cube: the cover is constant.
      result.add_gate(onset ? gate_kind::constant1 : gate_kind::constant0, {},
                      output);
      return;
    }
    if (literals.size() == 1) {
      product_nets.push_back(literals.front());
    } else {
      product_nets.push_back(
          result.add_gate(gate_kind::and_gate, literals, fresh_net("a")));
    }
  }

  if (product_nets.empty()) {
    // Empty cover: constant 0 onset (or constant 1 if offset listed).
    result.add_gate(onset ? gate_kind::constant0 : gate_kind::constant1, {},
                    output);
    return;
  }
  if (product_nets.size() == 1 && onset) {
    result.add_gate(gate_kind::buffer, {product_nets.front()}, output);
    return;
  }
  if (product_nets.size() == 1) {
    result.add_gate(gate_kind::inverter, {product_nets.front()}, output);
    return;
  }
  result.add_gate(onset ? gate_kind::or_gate : gate_kind::nor_gate,
                  product_nets, output);
}

}  // namespace

netlist read_blif(std::istream& is) {
  netlist result;
  std::string raw_line;
  std::string line;
  std::size_t line_number = 0;
  std::vector<names_block> blocks;
  std::size_t fresh = 0;
  bool ended = false;

  auto read_logical_line = [&]() -> bool {
    line.clear();
    while (std::getline(is, raw_line)) {
      ++line_number;
      if (raw_line.find('\0') != std::string::npos) {
        fail(line_number, "NUL byte in input");
      }
      if (const auto hash = raw_line.find('#'); hash != std::string::npos) {
        raw_line.resize(hash);
      }
      // Line continuation.
      while (!raw_line.empty() &&
             (raw_line.back() == '\\' ||
              (raw_line.size() >= 2 && raw_line.ends_with("\\\r")))) {
        raw_line.resize(raw_line.find_last_of('\\'));
        std::string next;
        if (!std::getline(is, next)) break;
        ++line_number;
        raw_line += next;
      }
      line = raw_line;
      if (!tokenize(line).empty()) return true;
    }
    return false;
  };

  std::vector<std::string> pending_outputs;
  names_block* open_block = nullptr;

  while (read_logical_line()) {
    const auto tokens = tokenize(line);
    for (const std::string& t : tokens) {
      if (t.size() > max_identifier_len) {
        fail(line_number, "token exceeds " +
                              std::to_string(max_identifier_len) +
                              " characters");
      }
    }
    const std::string& head = tokens.front();
    if (head[0] == '.') {
      open_block = nullptr;
      if (head == ".model") {
        if (tokens.size() > 1) result.set_name(tokens[1]);
      } else if (head == ".inputs") {
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          result.add_input(tokens[i]);
        }
      } else if (head == ".outputs") {
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          pending_outputs.push_back(tokens[i]);
        }
      } else if (head == ".names") {
        if (tokens.size() < 2) fail(line_number, ".names needs an output");
        names_block block;
        block.nets.assign(tokens.begin() + 1, tokens.end());
        block.line = line_number;
        blocks.push_back(std::move(block));
        open_block = &blocks.back();
      } else if (head == ".latch") {
        if (tokens.size() < 3) fail(line_number, ".latch needs input output");
        const std::string& input = tokens[1];
        const std::string& output = tokens[2];
        bool init = false;
        // Optional fields: [<type> <control>] [<init-val>].
        if (tokens.size() >= 4) {
          const std::string& last = tokens.back();
          if (last == "1" || last == "3") init = last == "1";
        }
        result.add_gate(gate_kind::dff,
                        {result.net_by_name(input)}, output, init);
      } else if (head == ".end") {
        ended = true;
        break;
      } else {
        fail(line_number, "unsupported directive " + head);
      }
    } else {
      if (!open_block) fail(line_number, "cover line outside .names");
      if (open_block->nets.size() == 1) {
        // Constant: single token "0" or "1".
        if (tokens.size() != 1) fail(line_number, "bad constant cover");
        open_block->cover.emplace_back("", tokens[0][0]);
      } else {
        if (tokens.size() != 2) fail(line_number, "bad cover line");
        open_block->cover.emplace_back(tokens[0], tokens[1][0]);
      }
    }
  }
  (void)ended;

  // Register all declared net names before lowering so that generated
  // helper nets never collide with names later in the file.
  for (const auto& block : blocks) {
    for (const auto& net : block.nets) result.net_by_name(net);
  }
  for (const auto& block : blocks) {
    lower_names(result, block, fresh);
  }
  for (const auto& net : pending_outputs) {
    result.mark_output(result.net_by_name(net));
  }
  if (!result.is_fully_driven()) {
    throw std::invalid_argument("blif: undriven nets referenced");
  }
  return result;
}

netlist read_blif_string(const std::string& text) {
  std::istringstream is(text);
  return read_blif(is);
}

netlist read_blif_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::invalid_argument("blif: cannot open " + path);
  return read_blif(is);
}

void write_blif(const netlist& circuit, std::ostream& os) {
  os << ".model " << circuit.name() << "\n.inputs";
  for (const auto in : circuit.inputs()) {
    os << ' ' << circuit.net_name(in);
  }
  os << "\n.outputs";
  for (const auto out : circuit.outputs()) {
    os << ' ' << circuit.net_name(out);
  }
  os << '\n';

  for (const auto& g : circuit.gates()) {
    if (g.kind == gate_kind::dff) {
      os << ".latch " << circuit.net_name(g.fanins.at(0)) << ' '
         << circuit.net_name(g.output) << ' ' << (g.init ? 1 : 0) << '\n';
      continue;
    }
    os << ".names";
    for (const auto f : g.fanins) os << ' ' << circuit.net_name(f);
    os << ' ' << circuit.net_name(g.output) << '\n';
    const std::size_t arity = g.fanins.size();
    switch (g.kind) {
      case gate_kind::constant0:
        break;  // empty cover = constant 0
      case gate_kind::constant1:
        os << "1\n";
        break;
      case gate_kind::buffer:
        os << "1 1\n";
        break;
      case gate_kind::inverter:
        os << "0 1\n";
        break;
      case gate_kind::and_gate:
        os << std::string(arity, '1') << " 1\n";
        break;
      case gate_kind::nand_gate:
        os << std::string(arity, '1') << " 0\n";
        break;
      case gate_kind::or_gate:
        for (std::size_t i = 0; i < arity; ++i) {
          std::string mask(arity, '-');
          mask[i] = '1';
          os << mask << " 1\n";
        }
        break;
      case gate_kind::nor_gate:
        os << std::string(arity, '0') << " 1\n";
        break;
      case gate_kind::xor_gate:
      case gate_kind::xnor_gate: {
        if (arity > 16) {
          throw std::invalid_argument("blif: XOR arity too large to expand");
        }
        const bool odd_wanted = g.kind == gate_kind::xor_gate;
        for (std::uint32_t m = 0; m < (1u << arity); ++m) {
          const bool odd = (std::popcount(m) & 1) != 0;
          if (odd != odd_wanted) continue;
          std::string mask(arity, '0');
          for (std::size_t i = 0; i < arity; ++i) {
            if ((m >> i) & 1u) mask[i] = '1';
          }
          os << mask << " 1\n";
        }
        break;
      }
      case gate_kind::mux_gate:
        os << "11- 1\n0-1 1\n";
        break;
      case gate_kind::dff:
        break;  // handled above
    }
  }
  os << ".end\n";
}

std::string write_blif_string(const netlist& circuit) {
  std::ostringstream os;
  write_blif(circuit, os);
  return os.str();
}

void write_blif_file(const netlist& circuit, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::invalid_argument("blif: cannot open " + path);
  write_blif(circuit, os);
}

}  // namespace xsfq
