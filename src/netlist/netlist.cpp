#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace xsfq {

const char* gate_kind_name(gate_kind kind) {
  switch (kind) {
    case gate_kind::constant0: return "CONST0";
    case gate_kind::constant1: return "CONST1";
    case gate_kind::buffer: return "BUFF";
    case gate_kind::inverter: return "NOT";
    case gate_kind::and_gate: return "AND";
    case gate_kind::or_gate: return "OR";
    case gate_kind::nand_gate: return "NAND";
    case gate_kind::nor_gate: return "NOR";
    case gate_kind::xor_gate: return "XOR";
    case gate_kind::xnor_gate: return "XNOR";
    case gate_kind::mux_gate: return "MUX";
    case gate_kind::dff: return "DFF";
  }
  return "?";
}

netlist::net_index netlist::add_net(const std::string& name) {
  const auto index = static_cast<net_index>(net_names_.size());
  net_names_.push_back(name);
  driver_.push_back(-1);
  by_name_.emplace(name, index);
  return index;
}

netlist::net_index netlist::add_input(const std::string& name) {
  const net_index n = net_by_name(name);
  if (driver_[n] != -1) {
    throw std::invalid_argument("netlist: input net already driven: " + name);
  }
  driver_[n] = -2;
  inputs_.push_back(n);
  return n;
}

void netlist::mark_output(net_index net) { outputs_.push_back(net); }

netlist::net_index netlist::add_gate(gate_kind kind,
                                     std::vector<net_index> fanins,
                                     const std::string& name, bool init) {
  const net_index out = net_by_name(name);
  if (driver_[out] != -1) {
    throw std::invalid_argument("netlist: net driven twice: " + name);
  }
  gate g;
  g.kind = kind;
  g.fanins = std::move(fanins);
  g.output = out;
  g.init = init;
  driver_[out] = static_cast<std::int32_t>(gates_.size());
  gates_.push_back(std::move(g));
  return out;
}

netlist::net_index netlist::net_by_name(const std::string& name) {
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    return it->second;
  }
  return add_net(name);
}

bool netlist::has_net(const std::string& name) const {
  return by_name_.contains(name);
}

std::size_t netlist::num_dffs() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(), [](const gate& g) {
        return g.kind == gate_kind::dff;
      }));
}

bool netlist::is_fully_driven() const {
  return std::all_of(driver_.begin(), driver_.end(),
                     [](std::int32_t d) { return d != -1; });
}

aig netlist::to_aig() const {
  if (!is_fully_driven()) {
    throw std::invalid_argument("netlist::to_aig: undriven nets present");
  }
  aig result;
  std::vector<signal> value(net_names_.size(), result.get_constant(false));
  std::vector<bool> ready(net_names_.size(), false);

  for (const net_index n : inputs_) {
    value[n] = result.create_pi(net_names_[n]);
    ready[n] = true;
  }
  // DFF outputs are register outputs (combinational inputs).
  std::vector<std::pair<std::size_t, const gate*>> dffs;
  for (const gate& g : gates_) {
    if (g.kind == gate_kind::dff) {
      value[g.output] =
          result.create_register_output(g.init, net_names_[g.output]);
      ready[g.output] = true;
      dffs.emplace_back(result.num_registers() - 1, &g);
    }
  }

  // Lower combinational gates; iterate until fixpoint since file order and
  // gate order are arbitrary (BENCH allows forward references).
  auto lower = [&](const gate& g) -> signal {
    std::vector<signal> ins;
    ins.reserve(g.fanins.size());
    for (const net_index f : g.fanins) ins.push_back(value[f]);
    switch (g.kind) {
      case gate_kind::constant0: return result.get_constant(false);
      case gate_kind::constant1: return result.get_constant(true);
      case gate_kind::buffer: return ins.at(0);
      case gate_kind::inverter: return !ins.at(0);
      case gate_kind::and_gate: return result.create_and_n(ins);
      case gate_kind::or_gate: return result.create_or_n(ins);
      case gate_kind::nand_gate: return !result.create_and_n(ins);
      case gate_kind::nor_gate: return !result.create_or_n(ins);
      case gate_kind::xor_gate: return result.create_xor_n(ins);
      case gate_kind::xnor_gate: return !result.create_xor_n(ins);
      case gate_kind::mux_gate:
        return result.create_mux(ins.at(0), ins.at(1), ins.at(2));
      case gate_kind::dff: break;  // handled above
    }
    throw std::logic_error("netlist::to_aig: unexpected gate kind");
  };

  bool progress = true;
  std::size_t remaining = 0;
  do {
    progress = false;
    remaining = 0;
    for (const gate& g : gates_) {
      if (g.kind == gate_kind::dff || ready[g.output]) continue;
      const bool inputs_ready =
          std::all_of(g.fanins.begin(), g.fanins.end(),
                      [&](net_index f) { return ready[f]; });
      if (!inputs_ready) {
        ++remaining;
        continue;
      }
      value[g.output] = lower(g);
      ready[g.output] = true;
      progress = true;
    }
  } while (progress && remaining > 0);
  if (remaining > 0) {
    throw std::invalid_argument(
        "netlist::to_aig: combinational cycle detected");
  }

  for (const net_index n : outputs_) {
    result.create_po(value[n], net_names_[n]);
  }
  for (const auto& [reg, g] : dffs) {
    result.set_register_input(reg, value[g->fanins.at(0)]);
  }
  return result;
}

netlist netlist_from_aig(const aig& network, const std::string& model_name) {
  netlist result;
  result.set_name(model_name);

  // Net naming: CIs keep their names; gates get n<idx>; complement edges
  // materialize inverter gates (shared per node).
  std::vector<netlist::net_index> net_of(network.size());
  std::vector<std::int32_t> inverted_net_of(network.size(), -1);

  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    net_of[network.pi(i).index()] = result.add_input(network.pi_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    // Placeholder nets now; DFF gates added after combinational logic so
    // that their data fanin nets exist.
    net_of[network.register_at(i).output_node] =
        result.net_by_name(network.register_name(i));
  }
  const netlist::net_index const0 =
      result.add_gate(gate_kind::constant0, {}, "const0");
  net_of[0] = const0;

  auto net_for = [&](signal s) -> netlist::net_index {
    if (!s.is_complemented()) return net_of[s.index()];
    if (inverted_net_of[s.index()] < 0) {
      const std::string name =
          "ninv" + std::to_string(static_cast<unsigned long>(s.index()));
      inverted_net_of[s.index()] = static_cast<std::int32_t>(
          result.add_gate(gate_kind::inverter, {net_of[s.index()]}, name));
    }
    return static_cast<netlist::net_index>(inverted_net_of[s.index()]);
  };

  network.foreach_gate([&](aig::node_index n) {
    const std::string name = "n" + std::to_string(static_cast<unsigned long>(n));
    net_of[n] = result.add_gate(
        gate_kind::and_gate,
        {net_for(network.fanin0(n)), net_for(network.fanin1(n))}, name);
  });

  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const signal po = network.po_signal(i);
    // Emit a named buffer so output names survive.
    const netlist::net_index n = result.add_gate(
        gate_kind::buffer, {net_for(po)}, network.po_name(i));
    result.mark_output(n);
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    result.add_gate(gate_kind::dff, {net_for(reg.input)},
                    network.register_name(i), reg.init);
  }
  return result;
}

}  // namespace xsfq
