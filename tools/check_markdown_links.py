#!/usr/bin/env python3
"""Check that relative markdown links point at files that exist.

Walks the given markdown files (default: README.md, ROADMAP.md, docs/*.md),
extracts every inline link/image target, and verifies each *relative* target
resolves to a real file or directory next to the file that references it.
Heading anchors (`file.md#section`) are checked for the file part and, when
the target is markdown, for a matching heading.  External URLs
(`http(s)://`, `mailto:`) are skipped — CI must not depend on the network.

Usage: check_markdown_links.py [FILE.md ...]
Exit 0 = all links resolve, 1 = broken links found.
"""

import glob
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.M)


def slugify(heading):
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    with open(path, encoding="utf-8") as f:
        return {slugify(h) for h in HEADING_RE.findall(f.read())}


def check_file(md_path, problems):
    base = os.path.dirname(os.path.abspath(md_path))
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    # Ignore fenced code blocks: shell snippets often contain (parenthes)es
    # that are not links, and example URLs need not resolve.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    count = 0
    for target in LINK_RE.findall(text):
        if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        count += 1
        path_part, _, anchor = target.partition("#")
        if not path_part:  # same-file anchor
            resolved = os.path.abspath(md_path)
        else:
            resolved = os.path.normpath(os.path.join(base, path_part))
        if not os.path.exists(resolved):
            problems.append(f"{md_path}: broken link -> {target}")
            continue
        if anchor and resolved.endswith(".md"):
            if anchor not in anchors_of(resolved):
                problems.append(
                    f"{md_path}: missing anchor -> {target}")
    return count


def main(argv):
    files = argv[1:]
    if not files:
        root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
        files = [os.path.join(root, "README.md"),
                 os.path.join(root, "ROADMAP.md")]
        files += sorted(glob.glob(os.path.join(root, "docs", "*.md")))
    problems = []
    total = 0
    for md in files:
        if not os.path.exists(md):
            problems.append(f"{md}: file not found")
            continue
        total += check_file(md, problems)
    if problems:
        print(f"{len(problems)} broken markdown link(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"all {total} relative markdown links resolve "
          f"({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
