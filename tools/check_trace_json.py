#!/usr/bin/env python3
"""Validate Chrome trace-event JSON files (the xsfq flight-recorder format).

Usage:
    check_trace_json.py FILE [FILE...]     validate dump files
    check_trace_json.py --self-test        validate an embedded sample

Checks the subset of the Chrome trace-event spec that Perfetto /
about:tracing actually require to load the file:

  - the top level is an object with a "traceEvents" array;
  - every event is an object with a non-empty string "name", phase
    "ph" == "X" (complete events are the only kind xsfq emits), and
    numeric, non-negative "ts"/"dur"/"pid"/"tid";
  - when an event carries args.trace_id it is 32 lowercase hex digits.

Runs with no third-party dependencies so the no-build docs CI job can call
it, and exits nonzero with a per-file message on the first violation.
"""

import json
import re
import sys

TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")

SELF_TEST_SAMPLE = """\
{"displayTimeUnit":"ms","traceEvents":[
 {"name":"queue_wait","ph":"X","ts":12,"dur":3,"pid":4242,"tid":1,
  "args":{"trace_id":"00112233445566778899aabbccddeeff"}},
 {"name":"stage:optimize","ph":"X","ts":15,"dur":820,"pid":4242,"tid":2},
 {"name":"request_total","ph":"X","ts":12,"dur":900,"pid":4242,"tid":1,
  "args":{"trace_id":"00112233445566778899aabbccddeeff"}}
]}
"""


def check_event(ev, where):
    if not isinstance(ev, dict):
        return f"{where}: event is not an object"
    name = ev.get("name")
    if not isinstance(name, str) or not name:
        return f"{where}: missing or empty event name"
    if ev.get("ph") != "X":
        return f"{where} ({name}): ph must be \"X\", got {ev.get('ph')!r}"
    for key in ("ts", "dur", "pid", "tid"):
        value = ev.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return f"{where} ({name}): {key} must be a number, got {value!r}"
        if value < 0:
            return f"{where} ({name}): {key} must be >= 0, got {value!r}"
    args = ev.get("args")
    if args is not None:
        if not isinstance(args, dict):
            return f"{where} ({name}): args must be an object"
        trace_id = args.get("trace_id")
        if trace_id is not None and not TRACE_ID_RE.match(str(trace_id)):
            return (f"{where} ({name}): args.trace_id must be 32 lowercase "
                    f"hex digits, got {trace_id!r}")
    return None


def check_text(text, label):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return f"{label}: not valid JSON: {e}"
    if not isinstance(doc, dict):
        return f"{label}: top level must be an object"
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return f"{label}: missing traceEvents array"
    for i, ev in enumerate(events):
        error = check_event(ev, f"{label}: traceEvents[{i}]")
        if error:
            return error
    return None


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[1] == "--self-test":
        error = check_text(SELF_TEST_SAMPLE, "self-test sample")
        if error:
            print(f"check_trace_json: SELF-TEST FAILED: {error}",
                  file=sys.stderr)
            return 1
        print("check_trace_json: self-test OK")
        return 0
    status = 0
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"check_trace_json: {e}", file=sys.stderr)
            status = 1
            continue
        error = check_text(text, path)
        if error:
            print(f"check_trace_json: {error}", file=sys.stderr)
            status = 1
        else:
            events = json.loads(text)["traceEvents"]
            print(f"check_trace_json: {path}: OK ({len(events)} events)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
