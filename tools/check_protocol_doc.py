#!/usr/bin/env python3
"""Cross-check docs/protocol.md constant tables against src/serve/protocol.hpp.

No-build twin of tests/test_protocol_doc.cpp: CI's docs job runs this in
seconds without a compiler, so a doc/header mismatch fails fast even on
doc-only pushes.  The compiled test remains the authoritative check (it
reads the enums through the C++ compiler, not a regex).

Usage: check_protocol_doc.py [REPO_ROOT]     (default: repo containing this
script).  Exit 0 = in sync, 1 = drift, 2 = parse failure.
"""

import os
import re
import sys


def parse_header_enum(text, enum_name):
    """Returns {name: value} for one `enum class NAME : ... { ... };`."""
    m = re.search(r"enum class %s[^{]*\{(.*?)\};" % enum_name, text, re.S)
    if not m:
        raise SystemExit(f"error: enum {enum_name} not found in header")
    body = re.sub(r"//[^\n]*", "", m.group(1))  # strip comments
    entries = {}
    for name, value in re.findall(r"(\w+)\s*=\s*(\d+)", body):
        entries[name] = int(value)
    if not entries:
        raise SystemExit(f"error: enum {enum_name} parsed empty")
    return entries


def parse_doc_table(text, heading):
    """Returns {name: value} from '| `name` | value |' rows under heading."""
    start = text.find(heading)
    if start < 0:
        raise SystemExit(f"error: doc section {heading!r} not found")
    end = text.find("\n## ", start)
    section = text[start:end if end >= 0 else len(text)]
    rows = {}
    for name, value in re.findall(r"^\| `(\w+)` \|\s*(\d+)\s*\|",
                                  section, re.M):
        if name in rows:
            raise SystemExit(f"error: duplicate doc row {name!r}")
        rows[name] = int(value)
    if not rows:
        raise SystemExit(f"error: no table rows under {heading!r}")
    return rows


def bold_number_after(text, marker):
    m = re.search(re.escape(marker) + r".*?\*\*(\d+)\*\*", text, re.S)
    if not m:
        raise SystemExit(f"error: doc lost the line {marker!r}")
    return int(m.group(1))


def diff(label, doc, header, problems):
    for name in sorted(set(doc) | set(header)):
        if name not in header:
            problems.append(f"{label}: doc documents {name!r} "
                            "which the header does not define")
        elif name not in doc:
            problems.append(f"{label}: header defines {name!r} "
                            "which the doc does not document")
        elif doc[name] != header[name]:
            problems.append(f"{label}: {name!r} documented as {doc[name]} "
                            f"but defined as {header[name]}")


def main(argv):
    root = argv[1] if len(argv) > 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..")
    header_path = os.path.join(root, "src", "serve", "protocol.hpp")
    doc_path = os.path.join(root, "docs", "protocol.md")
    with open(header_path) as f:
        header = f.read()
    with open(doc_path) as f:
        doc = f.read()

    problems = []

    version = re.search(
        r"protocol_version\s*=\s*(\d+)", header)
    if not version:
        raise SystemExit("error: protocol_version not found in header")
    doc_version = bold_number_after(doc, "Protocol version:")
    if doc_version != int(version.group(1)):
        problems.append(f"protocol version: documented {doc_version}, "
                        f"header says {version.group(1)}")

    payload = re.search(
        r"max_frame_payload\s*=\s*(\d+)u?\s*<<\s*(\d+)", header)
    if not payload:
        raise SystemExit("error: max_frame_payload not found in header")
    header_payload = int(payload.group(1)) << int(payload.group(2))
    doc_payload = bold_number_after(doc, "Maximum payload length:")
    if doc_payload != header_payload:
        problems.append(f"max payload: documented {doc_payload}, "
                        f"header says {header_payload}")

    diff("message type", parse_doc_table(doc, "## Message types"),
         parse_header_enum(header, "msg_type"), problems)
    diff("error code", parse_doc_table(doc, "## Error codes"),
         parse_header_enum(header, "error_code"), problems)

    if problems:
        print(f"docs/protocol.md out of sync with src/serve/protocol.hpp "
              f"({len(problems)} problem(s)):")
        for p in problems:
            print(f"  {p}")
        return 1
    print("docs/protocol.md is in sync with src/serve/protocol.hpp")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
