#!/usr/bin/env python3
"""Validate xsfq_served's Prometheus plaintext scrape (--stats output).

Usage:
    check_prometheus_text.py SCRAPE [LATER_SCRAPE]
    check_prometheus_text.py --self-test

Single-file checks (the exposition-format rules that actually bite):

  - every line is `name value` or `name{label="v",...} value`;
  - metric and label names match the Prometheus charset
    ([a-zA-Z_:][a-zA-Z0-9_:]*, labels without ':');
  - label values are double-quoted with only \\", \\\\ and \\n escapes;
  - values parse as finite floats (+Inf allowed only on `le` buckets — it
    lives in the label there, never in the value);
  - no duplicate series (same name + same label set twice in one scrape);
  - `_total` metrics and `_bucket`/`_count`/`_sum` histogram series carry
    no "timestamp" third column (xsfq never emits one).

With a second file, cross-scrape monotonicity: every `*_total` and
`*_count`/`*_bucket` series present in both scrapes must not decrease —
counters only go up within one daemon lifetime.

No third-party dependencies; exits nonzero with a message per violation.
"""

import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label pair: name="value" with only \" \\ \n escapes inside.
LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"')

SELF_TEST_SAMPLE = """\
xsfq_build_info{version="0.1.0",git_sha="abc1234"} 1
xsfq_uptime_seconds 42
xsfq_jobs_submitted_total 6
xsfq_cache_hits_total{tier="full"} 3
xsfq_latency_ms_bucket{name="request_total",le="+Inf"} 6
xsfq_latency_ms_sum{name="request_total"} 123.5
xsfq_latency_ms_count{name="request_total"} 6
"""

SELF_TEST_LATER = """\
xsfq_build_info{version="0.1.0",git_sha="abc1234"} 1
xsfq_uptime_seconds 43
xsfq_jobs_submitted_total 8
xsfq_cache_hits_total{tier="full"} 4
xsfq_latency_ms_bucket{name="request_total",le="+Inf"} 8
xsfq_latency_ms_sum{name="request_total"} 140.0
xsfq_latency_ms_count{name="request_total"} 8
"""


def parse_line(line, where, errors):
    """Returns (series_key, metric_name, value) or None after reporting."""
    if line.startswith("#"):  # HELP/TYPE/comment lines: not emitted, but legal
        return None
    # Split the sample value off the end; labels may contain spaces.
    if line.endswith("}") or " " not in line:
        errors.append(f"{where}: not `name[{{labels}}] value`: {line!r}")
        return None
    body, _, value_text = line.rpartition(" ")
    body = body.rstrip()
    if "{" in body:
        if not body.endswith("}"):
            errors.append(f"{where}: unterminated label set: {line!r}")
            return None
        name, _, labels_text = body[:-1].partition("{")
        # The pairs must tile the whole label string (with comma separators):
        # anything LABEL_PAIR_RE skipped is a syntax error.
        rebuilt, pairs, pos = [], [], 0
        for m in LABEL_PAIR_RE.finditer(labels_text):
            gap = labels_text[pos:m.start()]
            if gap not in ("", ","):
                errors.append(f"{where}: bad label syntax near {gap!r}: "
                              f"{line!r}")
                return None
            pairs.append((m.group(1), m.group(2)))
            rebuilt.append(m.group(0))
            pos = m.end()
        if pos != len(labels_text) or not pairs:
            errors.append(f"{where}: bad label syntax: {line!r}")
            return None
        for label, _ in pairs:
            if not LABEL_RE.match(label):
                errors.append(f"{where}: bad label name {label!r}: {line!r}")
                return None
    else:
        name, pairs = body, []
    if not METRIC_RE.match(name):
        errors.append(f"{where}: bad metric name {name!r}: {line!r}")
        return None
    label_map = dict(pairs)
    try:
        value = float(value_text)
    except ValueError:
        errors.append(f"{where}: bad sample value {value_text!r}: {line!r}")
        return None
    if value in (float("inf"), float("-inf")) or value != value:
        # +Inf belongs in the `le` label, never in the sample column.
        errors.append(f"{where}: non-finite sample value: {line!r}")
        return None
    series = name + "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"
    return series, name, value


def parse_scrape(text, label):
    errors = []
    series = {}
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        parsed = parse_line(line, f"{label}:{i}", errors)
        if parsed is None:
            continue
        key, name, value = parsed
        if key in series:
            errors.append(f"{label}:{i}: duplicate series {key}")
            continue
        series[key] = (name, value)
    return series, errors


def monotonic_name(name):
    return name.endswith(("_total", "_count", "_bucket"))


def check_monotonic(first, later, errors):
    for key, (name, value) in first.items():
        if not monotonic_name(name):
            continue
        if key not in later:
            # Sparse exposition: buckets/fault sites may appear later only.
            continue
        later_value = later[key][1]
        if later_value < value:
            errors.append(f"counter went backwards: {key} {value} -> "
                          f"{later_value}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[1] == "--self-test":
        first, errors = parse_scrape(SELF_TEST_SAMPLE, "sample")
        later, later_errors = parse_scrape(SELF_TEST_LATER, "later")
        errors += later_errors
        check_monotonic(first, later, errors)
        # The checker must also REJECT known-bad lines.
        for bad in ('xsfq_bad metric 1', 'xsfq_x{tier=full} 1',
                    '9leading_digit 1', 'xsfq_x 1 2 3 nonsense',
                    'xsfq_x +Inf'):
            _, bad_errors = parse_scrape(bad, "bad")
            if not bad_errors:
                errors.append(f"self-test: accepted bad line {bad!r}")
        if errors:
            for e in errors:
                print(f"check_prometheus_text: SELF-TEST FAILED: {e}",
                      file=sys.stderr)
            return 1
        print("check_prometheus_text: self-test OK")
        return 0

    with open(argv[1], "r", encoding="utf-8") as f:
        first, errors = parse_scrape(f.read(), argv[1])
    if len(argv) > 2:
        with open(argv[2], "r", encoding="utf-8") as f:
            later, later_errors = parse_scrape(f.read(), argv[2])
        errors += later_errors
        check_monotonic(first, later, errors)
    if errors:
        for e in errors:
            print(f"check_prometheus_text: {e}", file=sys.stderr)
        return 1
    print(f"check_prometheus_text: OK ({len(first)} series)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
