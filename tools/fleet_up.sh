#!/usr/bin/env bash
# fleet_up.sh — launch an N-daemon xsfq_served fleet on Unix sockets.
#
#   tools/fleet_up.sh SERVED_BINARY DIR N [extra xsfq_served args...]
#
# Starts N daemons on DIR/shard<i>.sock, writes DIR/shard<i>.pid for each,
# waits until every socket accepts, and prints the comma-separated endpoint
# list on stdout — ready to paste into `xsfq_client --fleet=...`:
#
#   FLEET=$(tools/fleet_up.sh ./build/xsfq_served /tmp/fleet 3)
#   ./build/xsfq_client --fleet=$FLEET c432 c880
#
# Extra arguments are forwarded verbatim to every daemon (--threads=...,
# --faults=..., --log-level=...).  Daemon stderr goes to DIR/shard<i>.log.
# Tear the fleet down with:  kill $(cat DIR/shard*.pid)
set -euo pipefail

if [ "$#" -lt 3 ]; then
  echo "usage: $0 SERVED_BINARY DIR N [extra xsfq_served args...]" >&2
  exit 2
fi

served=$1
dir=$2
count=$3
shift 3

if [ ! -x "$served" ]; then
  echo "fleet_up: $served is not an executable" >&2
  exit 2
fi
case "$count" in
  ''|*[!0-9]*|0) echo "fleet_up: N must be a positive integer" >&2; exit 2 ;;
esac

mkdir -p "$dir"

endpoints=""
for i in $(seq 0 $((count - 1))); do
  sock="$dir/shard$i.sock"
  rm -f "$sock"
  # Both streams go to the log: a daemon inheriting our stdout would keep a
  # caller's $(fleet_up.sh ...) command substitution open forever.
  "$served" --socket="$sock" "$@" > "$dir/shard$i.log" 2>&1 &
  echo $! > "$dir/shard$i.pid"
  endpoints="${endpoints:+$endpoints,}$sock"
done

# Every shard must come up; a daemon that died at startup (bad flag, bound
# socket) fails the launcher instead of leaving a silently smaller fleet.
for i in $(seq 0 $((count - 1))); do
  sock="$dir/shard$i.sock"
  pid=$(cat "$dir/shard$i.pid")
  for _ in $(seq 100); do
    [ -S "$sock" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "fleet_up: shard$i (pid $pid) died during startup:" >&2
      cat "$dir/shard$i.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ ! -S "$sock" ]; then
    echo "fleet_up: shard$i never bound $sock" >&2
    exit 1
  fi
done

echo "$endpoints"
