/// Build-time bake of the 4-input rewrite library (the ABC approach: ship
/// the precomputed table as static data instead of re-running the ~500M-probe
/// Dijkstra closure at every process start).  Runs the exact runtime closure
/// and dumps the settled entries as a C++ .inc blob that rewrite_library.cpp
/// includes when XSFQ_BAKED_REWRITE_LIBRARY is defined; a unit test pins the
/// baked/fresh parity.
///
///   rewrite_library_gen <output.inc>
#include <fstream>
#include <iostream>

#include "opt/rewrite_library.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <output.inc>\n";
    return 2;
  }
  const xsfq::rewrite_library library;  // full closure, default budget
  std::ofstream os(argv[1]);
  if (!os) {
    std::cerr << "cannot open " << argv[1] << " for writing\n";
    return 1;
  }
  library.dump_baked(os);
  os.flush();
  if (!os.good()) {
    std::cerr << "write failed for " << argv[1] << "\n";
    return 1;
  }
  std::cout << "baked " << library.num_settled() << " settled functions ("
            << library.num_classes_covered() << "/222 NPN classes) into "
            << argv[1] << "\n";
  return 0;
}
