#!/usr/bin/env python3
"""Gate perf benches against the committed baseline snapshot.

Usage:
    check_perf_regression.py BASELINE.json NAME=CURRENT.json [NAME=FILE ...]
                             [--max-regression 0.25] [--no-calibrate]
    check_perf_regression.py --update BASELINE.json NAME=CURRENT.json [...]

--update rewrites baseline[NAME] with each CURRENT.json instead of gating —
the sanctioned way to re-baseline after an intentional perf change (commit
the result and say why).

BASELINE.json maps bench names to the JSON those benches emit with --json
(see bench/BENCH_baseline.json).  For every NAME=FILE pair the current JSON
is compared recursively against baseline[NAME]:

  * keys ending in "_ms"      -> lower is better; fail when
                                 current > baseline * (1 + tol) * scale + abs_slack
  * keys ending in "_per_s"   -> higher is better; fail when
                                 current < baseline / ((1 + tol) * scale)

A baseline entry may also carry an "abs_caps" object mapping dotted metric
paths (relative to the bench entry) to absolute millisecond ceilings, e.g.
{"eco.c6288.edit1_ms": 2.0}.  Caps encode acceptance criteria ("a single-gate
c6288 edit resynthesizes in under 2 ms") rather than drift tolerances: they
are enforced without tolerance, slack, or hardware calibration, and --update
preserves them across re-baselining.

Everything else (counters, speedup ratios, nested arrays) is informational
only.  `scale` compensates for the benchmark host being faster/slower than
the machine that produced the baseline: it is derived from the calibration
metric "sim.scalar_sweep_mpatterns_per_s" when present in both the baseline
and the current bench_perf_sim output (disable with --no-calibrate).  The
absolute slack (0.5 ms) keeps sub-millisecond metrics from tripping the gate
on scheduler noise.
"""

import json
import sys

TOL_DEFAULT = 0.25
ABS_SLACK_MS = 0.5
CALIBRATION_KEY = ("sim", "scalar_sweep_mpatterns_per_s")


# Daemon round-trip latencies are sub-millisecond and dominated by
# scheduler/IO jitter the throughput calibration cannot capture; they stay
# informational (archived in the perf-smoke artifact) rather than gated.
UNGATED_SUBTREES = {"service"}


def walk(prefix, base, cur, out):
    if isinstance(base, dict) and isinstance(cur, dict):
        for key, bval in base.items():
            if key in UNGATED_SUBTREES or key == "abs_caps":
                continue
            if key in cur:
                walk(prefix + (key,), bval, cur[key], out)
        return
    if isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        out.append((prefix, float(base), float(cur)))


def main(argv):
    tol = TOL_DEFAULT
    calibrate = True
    update = False
    positional = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--max-regression":
            i += 1
            tol = float(argv[i])
        elif arg == "--no-calibrate":
            calibrate = False
        elif arg == "--update":
            update = True
        else:
            positional.append(arg)
        i += 1
    if len(positional) < 2:
        print(__doc__)
        return 2

    with open(positional[0]) as f:
        baseline = json.load(f)

    currents = {}
    for pair in positional[1:]:
        name, _, path = pair.partition("=")
        if not path:
            print(f"error: expected NAME=FILE, got {pair!r}")
            return 2
        with open(path) as f:
            currents[name] = json.load(f)

    if update:
        for name, cur in currents.items():
            caps = baseline.get(name, {}).get("abs_caps")
            baseline[name] = cur
            if caps is not None:
                # Caps are policy, not measurement; they survive re-baselining.
                baseline[name]["abs_caps"] = caps
            print(f"re-baselined {name}")
        with open(positional[0], "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"wrote {positional[0]}")
        return 0

    # Hardware calibration: how much slower (>1) or faster (<1) is this host
    # than the baseline host, judged by the raw sim sweep throughput.
    scale = 1.0
    if calibrate:
        for name, cur in currents.items():
            base = baseline.get(name, {})
            b = base
            c = cur
            for key in CALIBRATION_KEY:
                b = b.get(key, {}) if isinstance(b, dict) else {}
                c = c.get(key, {}) if isinstance(c, dict) else {}
            if isinstance(b, (int, float)) and isinstance(c, (int, float)) and c:
                scale = float(b) / float(c)
                print(f"calibration: host scale {scale:.3f} "
                      f"(baseline {b:.3f} / current {c:.3f} Mpatterns/s)")
                break

    failures = []
    for name, cur in currents.items():
        if name not in baseline:
            print(f"warning: no baseline entry for {name}; skipping")
            continue
        metrics = []
        walk((name,), baseline[name], cur, metrics)
        for path, bval, cval in metrics:
            key = path[-1]
            label = ".".join(path)
            if key.endswith("_ms"):
                limit = bval * (1.0 + tol) * scale + ABS_SLACK_MS
                status = "FAIL" if cval > limit else "ok"
                print(f"{status:4} {label}: {cval:.3f} ms "
                      f"(baseline {bval:.3f}, limit {limit:.3f})")
                if cval > limit:
                    failures.append((label, bval, cval, limit, "ms"))
            elif key.endswith("_per_s"):
                limit = bval / ((1.0 + tol) * scale)
                status = "FAIL" if cval < limit else "ok"
                print(f"{status:4} {label}: {cval:.3f} /s "
                      f"(baseline {bval:.3f}, floor {limit:.3f})")
                if cval < limit:
                    failures.append((label, bval, cval, limit, "/s"))

    # Absolute caps: acceptance-criterion ceilings, no tolerance and no
    # hardware calibration (a slower host does not get to miss the claim).
    for name, cur in currents.items():
        caps = baseline.get(name, {}).get("abs_caps", {})
        for dotted, cap in caps.items():
            node = cur
            for key in dotted.split("."):
                node = node.get(key) if isinstance(node, dict) else None
            if not isinstance(node, (int, float)):
                print(f"FAIL {name}.{dotted}: capped metric missing from "
                      f"current run")
                failures.append((f"{name}.{dotted}", float(cap), float("nan"),
                                 float(cap), "ms"))
                continue
            status = "FAIL" if node > cap else "ok"
            print(f"{status:4} {name}.{dotted}: {node:.3f} ms "
                  f"(absolute cap {cap:.3f})")
            if node > cap:
                failures.append((f"{name}.{dotted}", float(cap), float(node),
                                 float(cap), "ms"))

    if failures:
        print(f"\nperf regression: {len(failures)} metric(s) beyond "
              f"{tol * 100:.0f}% of baseline:")
        for label, bval, cval, limit, unit in failures:
            delta = (cval / bval - 1.0) * 100.0 if bval else float("inf")
            print(f"  {label}: baseline {bval:.3f} {unit} -> measured "
                  f"{cval:.3f} {unit} ({delta:+.1f}%, gate at {limit:.3f})")
        print("intentional change? re-baseline with --update "
              "(see docs/operations.md, 'The perf-gate workflow')")
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
