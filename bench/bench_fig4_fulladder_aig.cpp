/// Reproduces Figure 4 and the Sec. 3.1.1/3.1.3 full-adder walk-through:
/// direct dual-rail mapping of the 9-NAND netlist (18 cells, 120/264 JJ),
/// then the minimal 7-node AIG (14 LA/FA cells).
#include <iostream>

#include "aig/simulate.hpp"
#include "bench_common.hpp"
#include "netlist/dot_io.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main() {
  std::cout << "== Figure 4 / Sec. 3.1: full-adder mapping walk-through ==\n\n";
  table_printer t({"Implementation", "AIG nodes", "LA/FA cells", "Splitters",
                   "JJ", "JJ (PTL)", "Paper"});

  // Sec. 3.1.1: direct mapping of the 9-NAND netlist.
  {
    const aig nands = nand9_full_adder_aig();
    mapping_params p;
    p.polarity = polarity_mode::direct_dual_rail;
    const auto m = map_to_xsfq(nands, p);
    t.add_row({"9-NAND direct (3.1.1)", std::to_string(nands.num_gates()),
               std::to_string(m.stats.la_cells + m.stats.fa_cells),
               std::to_string(m.stats.splitters), std::to_string(m.stats.jj),
               std::to_string(m.stats.jj_ptl), "18 cells, 120/264 JJ"});
  }
  // Sec. 3.1.3: the minimal AIG (Figure 4) mapped as LA-FA pairs.
  const aig fa7 = paper_full_adder_aig();
  {
    mapping_params p;
    p.polarity = polarity_mode::direct_dual_rail;
    const auto m = map_to_xsfq(fa7, p);
    t.add_row({"7-node AIG pairs (Fig 4)", std::to_string(fa7.num_gates()),
               std::to_string(m.stats.la_cells + m.stats.fa_cells),
               std::to_string(m.stats.splitters), std::to_string(m.stats.jj),
               std::to_string(m.stats.jj_ptl), "7 nodes, 14 cells"});
  }
  // Our optimizer's result from the behavioural description.
  {
    aig g;
    const signal a = g.create_pi("a");
    const signal b = g.create_pi("b");
    const signal c = g.create_pi("cin");
    g.create_po(g.create_xor(g.create_xor(a, b), c), "s");
    g.create_po(g.create_maj(a, b, c), "cout");
    const aig opt = optimize(g);
    mapping_params p;
    p.polarity = polarity_mode::direct_dual_rail;
    const auto m = map_to_xsfq(opt, p);
    t.add_row({"our optimize() result", std::to_string(opt.num_gates()),
               std::to_string(m.stats.la_cells + m.stats.fa_cells),
               std::to_string(m.stats.splitters), std::to_string(m.stats.jj),
               std::to_string(m.stats.jj_ptl),
               "ABC reaches 7 (cross-output share)"});
    std::cout << "functional check vs 7-node AIG: "
              << (exhaustive_equivalent(opt, fa7) ? "equivalent" : "MISMATCH")
              << "\n\n";
  }
  t.print(std::cout);

  std::cout << "\nFigure 4 AIG in DOT form (dotted = complemented edge):\n"
            << write_dot_string(fa7, "full_adder") << "\n";
  return 0;
}
