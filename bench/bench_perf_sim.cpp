/// Microbenchmarks for the wide simulation engine: scalar-reference vs
/// wide-engine sweep throughput, random_equivalent throughput against the
/// pre-engine implementation (the PR acceptance gate: >= 4x on c6288), and
/// the incremental-resimulation skip rate.  Plain chrono (no
/// google-benchmark dependency) so it always builds; CI runs it in Release,
/// archives the PERF lines, and uses --json to emit the BENCH_perf.json
/// perf-trajectory artifact (stage timings + sim counters).
///
///   bench_perf_sim [circuit] [reps] [--json=FILE]   (default: c6288, 5)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "aig/sim_reference.hpp"
#include "aig/simulate.hpp"
#include "benchgen/registry.hpp"
#include "flow/flow.hpp"
#include "opt/opt_engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/synth_service.hpp"
#include "util/rng.hpp"

using namespace xsfq;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

/// End-to-end service latency through a real daemon (socket, protocol, and
/// cache tiers included): one cold request, warm repeats against the live
/// daemon's memory cache, and a disk-warm request against a restarted
/// daemon whose only warmth is the persisted cache directory.
struct service_latency {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double disk_warm_ms = 0.0;
};

service_latency measure_service(const std::string& circuit, int reps) {
  char tmpl[] = "/tmp/xsfq_perf_serve_XXXXXX";
  const char* created = mkdtemp(tmpl);
  if (created == nullptr) {
    std::cerr << "service benchmark: cannot create temp dir under /tmp\n";
    std::exit(1);
  }
  const std::string dir = created;
  serve::server_options options;
  options.socket_path = dir + "/served.sock";
  options.cache_dir = dir + "/cache";
  options.threads = 2;
  const serve::synth_request req = serve::make_request_for_spec(circuit);

  service_latency lat;
  {
    serve::server srv(options);
    serve::client cli(options.socket_path);
    const auto cold_start = clock_type::now();
    const auto cold = cli.submit(req);
    lat.cold_ms = ms_since(cold_start);
    if (!cold.ok) {
      std::cerr << "service benchmark: cold request failed: " << cold.error
                << "\n";
      std::exit(1);
    }
    lat.warm_ms = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto start = clock_type::now();
      const auto warm = cli.submit(req);
      lat.warm_ms = std::min(lat.warm_ms, ms_since(start));
      if (!warm.ok || !warm.served_from_cache) {
        std::cerr << "service benchmark: warm request missed the cache\n";
        std::exit(1);
      }
    }
    srv.stop();
  }
  {
    serve::server srv(options);  // restart: cold memory, warm disk
    serve::client cli(options.socket_path);
    const auto start = clock_type::now();
    const auto warm = cli.submit(req);
    lat.disk_warm_ms = ms_since(start);
    if (!warm.ok || !warm.served_from_cache) {
      std::cerr << "service benchmark: disk-warm request missed the cache\n";
      std::exit(1);
    }
    srv.stop();
  }
  std::filesystem::remove_all(dir);
  return lat;
}

void write_json(const std::string& path, const std::string& circuit,
                const flow::flow_result& flow_run, double scalar_mpps,
                double wide_mpps, double requiv_ref_pps,
                double requiv_new_pps, double skip_fraction,
                const service_latency& service) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"circuit\": \"" << circuit << "\",\n"
     << "  \"sim\": {\n"
     << "    \"scalar_sweep_mpatterns_per_s\": " << scalar_mpps << ",\n"
     << "    \"wide_sweep_mpatterns_per_s\": " << wide_mpps << ",\n"
     << "    \"sweep_speedup\": " << (wide_mpps / scalar_mpps) << ",\n"
     << "    \"random_equivalent_ref_patterns_per_s\": " << requiv_ref_pps
     << ",\n"
     << "    \"random_equivalent_patterns_per_s\": " << requiv_new_pps
     << ",\n"
     << "    \"random_equivalent_speedup\": "
     << (requiv_new_pps / requiv_ref_pps) << ",\n"
     << "    \"incremental_skip_fraction\": " << skip_fraction << "\n"
     << "  },\n"
     << "  \"flow_stages\": [\n";
  for (std::size_t i = 0; i < flow_run.timings.size(); ++i) {
    const auto& t = flow_run.timings[i];
    const auto& c = t.counters;
    os << "    {\"stage\": \"" << t.stage << "\", \"ms\": " << t.ms
       << ", \"nodes\": " << c.nodes << ", \"cuts\": " << c.cuts
       << ", \"replacements\": " << c.replacements
       << ", \"arena_bytes\": " << c.arena_bytes
       << ", \"sim_words\": " << c.sim_words
       << ", \"sim_node_evals\": " << c.sim_node_evals
       << ", \"arena_peak_bytes\": " << c.arena_peak_bytes
       << ", \"rebuilds_avoided\": " << c.rebuilds_avoided << "}"
       << (i + 1 < flow_run.timings.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"flow_total_ms\": " << flow_run.total_ms << ",\n"
     << "  \"service\": {\n"
     << "    \"cold_request_ms\": " << service.cold_ms << ",\n"
     << "    \"warm_request_ms\": " << service.warm_ms << ",\n"
     << "    \"disk_warm_request_ms\": " << service.disk_warm_ms << ",\n"
     << "    \"warm_speedup\": " << (service.cold_ms / service.warm_ms)
     << ",\n"
     << "    \"disk_warm_speedup\": "
     << (service.cold_ms / service.disk_warm_ms) << "\n"
     << "  }\n"
     << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit = "c6288";
  int reps = 5;
  std::string json_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (positional == 0) {
      circuit = arg;
      ++positional;
    } else if (positional == 1) {
      reps = std::atoi(arg.c_str());
      ++positional;
    }
  }
  if (reps <= 0) {
    std::cerr << "usage: " << argv[0] << " [circuit] [reps>0] [--json=FILE]\n";
    return 2;
  }

  std::cout << "== bench_perf_sim: wide simulation microbenchmarks ("
            << circuit << ", " << reps << " reps) ==\n\n";
  const aig g = benchgen::make_benchmark(circuit);
  std::cout << circuit << ": " << g.num_gates() << " AIG nodes, "
            << g.num_cis() << " CI, " << g.num_cos() << " CO, depth "
            << g.depth() << "\n\n";

  // A structurally different but equivalent partner for the equivalence
  // checks (what the verification hot path actually compares).
  opt_engine opt;
  const aig partner = opt.run_pass(g, "b");

  constexpr unsigned sweeps = 64;  // 64-pattern words per rep
  constexpr unsigned wide_width = equivalence_checker::default_width;

  // Every measurement below takes the fastest of `reps` timed runs (after
  // one warm-up), which is robust against scheduler noise on shared or
  // single-core machines; both sides of every comparison are treated alike.
  const auto best_of = [&](auto&& body) {
    body();  // warm-up: first-touch planes, page faults, caches
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto start = clock_type::now();
      body();
      best = std::min(best, ms_since(start));
    }
    return best;
  };

  // 1. Scalar reference sweeps: 64 patterns per full traversal.
  rng scalar_gen(1);
  std::vector<std::uint64_t> patterns(g.num_cis());
  std::uint64_t keep_alive = 0;
  const double scalar_ms = best_of([&] {
    for (unsigned s = 0; s < sweeps; ++s) {
      for (auto& p : patterns) p = scalar_gen();
      keep_alive ^= reference_simulate64(g, patterns)[0];
    }
  });
  if (keep_alive == 0x12345678u) std::cout << "";  // defeat dead-code elim
  const double scalar_mpps =
      sweeps * 64.0 / (scalar_ms / 1000.0) / 1e6;  // Mpatterns/s

  // 2. Wide engine sweeps: wide_width x 64 patterns per traversal on one
  // recycled plane.
  sim_engine engine(wide_width);
  engine.attach(g);
  rng wide_gen(1);
  const double wide_ms = best_of([&] {
    for (unsigned s = 0; s < sweeps / wide_width; ++s) {
      engine.randomize_inputs(wide_gen);
      engine.simulate();
    }
  });
  const std::uint64_t wide_node_evals = engine.counters().node_evals;
  const double wide_mpps = sweeps * 64.0 / (wide_ms / 1000.0) / 1e6;

  std::cout << "full-network sweep, " << sweeps * 64 << " patterns/rep:\n"
            << "  scalar reference (1 word/traversal): " << scalar_ms
            << " ms/rep = " << scalar_mpps << " Mpatterns/s\n"
            << "  wide engine     (" << wide_width
            << " words/traversal): " << wide_ms << " ms/rep = " << wide_mpps
            << " Mpatterns/s  (" << wide_mpps / scalar_mpps << "x, "
            << wide_node_evals << " node evals total)\n\n";

  // 3. random_equivalent throughput: the verification hot path.
  constexpr unsigned requiv_rounds = 64;  // x64 patterns per check
  const double requiv_ref_ms = best_of([&] {
    if (!reference_random_equivalent(g, partner, requiv_rounds, 7)) {
      std::cerr << "reference_random_equivalent: unexpected mismatch\n";
      std::exit(1);
    }
  });
  equivalence_checker checker;  // persistent scratch, like the opt engine
  const double requiv_new_ms = best_of([&] {
    if (!checker.check(g, partner, requiv_rounds, 7)) {
      std::cerr << "random_equivalent: unexpected mismatch\n";
      std::exit(1);
    }
  });
  const double requiv_patterns = requiv_rounds * 64.0;
  const double requiv_ref_pps = requiv_patterns / (requiv_ref_ms / 1000.0);
  const double requiv_new_pps = requiv_patterns / (requiv_new_ms / 1000.0);
  const double requiv_speedup = requiv_new_pps / requiv_ref_pps;
  std::cout << "random_equivalent vs balanced copy, " << requiv_rounds
            << " x64 patterns/check:\n"
            << "  pre-engine reference: " << requiv_ref_ms << " ms/check = "
            << requiv_ref_pps / 1e6 << " Mpatterns/s\n"
            << "  wide engine:          " << requiv_new_ms << " ms/check = "
            << requiv_new_pps / 1e6 << " Mpatterns/s  (" << requiv_speedup
            << "x)\n\n";

  // 4. Incremental resimulation: flip one input, re-sweep only its cone.
  double incr_ms = 0.0;
  double skip_fraction = 0.0;
  {
    sim_engine engine(8);
    engine.attach(g);
    rng gen(3);
    engine.randomize_inputs(gen);
    engine.simulate();
    engine.reset_counters();
    const unsigned flips = 256;
    const auto start = clock_type::now();
    for (unsigned f = 0; f < flips; ++f) {
      for (auto& word : engine.ci_words(f % g.num_cis())) word = gen();
      engine.resimulate();
    }
    incr_ms = ms_since(start) / flips;
    const auto& c = engine.counters();
    skip_fraction = static_cast<double>(c.node_evals_skipped) /
                    static_cast<double>(c.node_evals + c.node_evals_skipped);
  }
  std::cout << "incremental resim (1 CI touched): " << incr_ms * 1000.0
            << " us/resim, " << skip_fraction * 100.0
            << "% node evals skipped\n";

  // Machine-readable trend lines for the CI artifact.
  std::cout << "\nPERF_SIM circuit=" << circuit
            << " scalar_sweep_mpps=" << scalar_mpps
            << " wide_sweep_mpps=" << wide_mpps
            << " sweep_speedup=" << wide_mpps / scalar_mpps
            << " requiv_ref_pps=" << requiv_ref_pps
            << " requiv_pps=" << requiv_new_pps
            << " requiv_speedup=" << requiv_speedup
            << " incr_skip=" << skip_fraction << "\n";

  if (!json_path.empty()) {
    // End-to-end service latency: cold vs warm-cache requests through a
    // real daemon, including a restart that leaves only the disk tier warm.
    const service_latency service = measure_service(circuit, reps);
    std::cout << "\nservice request latency (" << circuit << "):\n"
              << "  cold (full synthesis):    " << service.cold_ms << " ms\n"
              << "  warm (memory cache):      " << service.warm_ms << " ms ("
              << service.cold_ms / service.warm_ms << "x)\n"
              << "  restart (disk cache):     " << service.disk_warm_ms
              << " ms (" << service.cold_ms / service.disk_warm_ms << "x)\n";
    std::cout << "\nPERF_SERVE circuit=" << circuit
              << " cold_ms=" << service.cold_ms
              << " warm_ms=" << service.warm_ms
              << " disk_warm_ms=" << service.disk_warm_ms
              << " warm_speedup=" << service.cold_ms / service.warm_ms
              << " disk_warm_speedup="
              << service.cold_ms / service.disk_warm_ms << "\n";

    // Stage timings with sim counters: one validated flow run.
    flow::flow_options options;
    options.opt.validate_passes = true;
    const auto flow_run = flow::run_flow(circuit, options);
    write_json(json_path, circuit, flow_run, scalar_mpps, wide_mpps,
               requiv_ref_pps, requiv_new_pps, skip_fraction, service);
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
