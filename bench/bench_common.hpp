#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the table/figure reproduction binaries.
///
/// Every binary regenerates one table or figure from the paper; paper-
/// reported values are tabulated next to our measured ones so EXPERIMENTS.md
/// can record both.  All flows are deterministic.

#include <cstdio>
#include <string>

#include "baseline/rsfq.hpp"
#include "benchgen/registry.hpp"
#include "core/mapper.hpp"
#include "flow/batch_runner.hpp"
#include "flow/flow.hpp"
#include "opt/script.hpp"
#include "util/table_printer.hpp"

namespace xsfq::bench {

/// Complete flow record for one circuit (see src/flow).  All flow setup goes
/// through flow::run_flow / flow::batch_runner directly — this header only
/// keeps the hand-built example networks shared by the figure benches.
using flow_record = flow::flow_result;

/// The paper's 7-node full adder AIG (Figure 4).
inline aig paper_full_adder_aig() {
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  const signal c = g.create_pi("cin");
  const signal n1 = g.create_and(a, b);
  const signal n2 = g.create_and(!a, !b);
  const signal n3 = g.create_and(!n1, !n2);
  const signal n4 = g.create_and(n3, c);
  const signal n5 = g.create_and(!n3, !c);
  g.create_po(g.create_and(!n4, !n5), "s");
  g.create_po(!g.create_and(!n1, !n4), "cout");
  return g;
}

/// Full adder as the paper's Sec. 3.1.1 9-NAND netlist.
inline aig nand9_full_adder_aig() {
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  const signal c = g.create_pi("cin");
  const signal n1 = g.create_nand(a, b);
  const signal n2 = g.create_nand(a, n1);
  const signal n3 = g.create_nand(b, n1);
  const signal x = g.create_nand(n2, n3);  // a ^ b
  const signal n4 = g.create_nand(x, c);
  const signal n5 = g.create_nand(x, n4);
  const signal n6 = g.create_nand(c, n4);
  g.create_po(g.create_nand(n5, n6), "s");
  g.create_po(g.create_nand(n1, n4), "cout");
  return g;
}

}  // namespace xsfq::bench
