/// Reproduces Figure 7: pulse-level simulation of a 2-bit xSFQ counter with
/// the one-shot trigger, rendering the trg/clk/out waveform in ASCII.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pulsesim/pulse_sim.hpp"

using namespace xsfq;

int main() {
  std::printf("== Figure 7: 2-bit xSFQ counter, pulse-level simulation ==\n\n");

  aig g;
  const signal r0 = g.create_register_output(false, "r0");
  const signal r1 = g.create_register_output(false, "r1");
  g.set_register_input(0, !r0);
  g.set_register_input(1, g.create_xor(r0, r1));
  g.create_po(r0, "out0");
  g.create_po(r1, "out1");

  // Boundary pairs give the cleanest Fig. 7 trace: exact counting from the
  // declared reset values with the alternating property holding every cycle.
  mapping_params p;
  p.reg_style = register_style::pair_boundary;
  const auto m = map_to_xsfq(g, p);
  std::printf("mapped: %s\n\n", m.netlist.summary().c_str());

  pulse_simulator sim(m.netlist, m.register_feedback);
  sim.reset();
  const int cycles = 6;
  std::string row_clk = "clk    ";
  std::string row_out0 = "out[0] ";
  std::string row_out1 = "out[1] ";
  std::string row_phase = "phase  ";
  std::vector<int> values;
  for (int c = 0; c < cycles; ++c) {
    const auto r = sim.run_cycle({});
    values.push_back((r.outputs[1] ? 2 : 0) + (r.outputs[0] ? 1 : 0));
    row_phase += " e r ";
    row_clk += " | | ";
    row_out0 += r.outputs[0] ? " # . " : " . # ";  // excite pulse / relax pulse
    row_out1 += r.outputs[1] ? " # . " : " . # ";
    if (!r.alternating_ok || !r.outputs_consistent) {
      std::printf("protocol violation at cycle %d\n", c);
      return 1;
    }
  }
  std::printf("%s\n%s\n%s\n%s\n", row_phase.c_str(), row_clk.c_str(),
              row_out0.c_str(), row_out1.c_str());
  std::printf("        ('#' = pulse; every signal pulses in exactly one of\n"
              "         the two phases — the alternating encoding of Fig. 1)\n\n");
  std::printf("counter values: ");
  for (const int v : values) std::printf("2'b%d%d ", v >> 1, v & 1);
  std::printf("\n(paper Fig. 7: 00 01 10 11 00 01 ...)\n\n");

  // Retimed variant with the one-shot trigger (Fig. 6iii / Fig. 7 trg line).
  mapping_params pr;
  pr.reg_style = register_style::pair_retimed;
  const auto mr = map_to_xsfq(g, pr);
  pulse_simulator simr(mr.netlist, mr.register_feedback);
  simr.reset();
  simr.fire_trigger();
  std::printf("retimed variant (trigger cycle first): trg | ");
  for (int c = 0; c < cycles; ++c) {
    const auto r = simr.run_cycle({});
    std::printf("2'b%d%d ", r.outputs[1] ? 1 : 0, r.outputs[0] ? 1 : 0);
  }
  std::printf("\n(the trigger wave sets the initial state — Sec. 3.2; the\n"
              " counter then steps through its full 4-state orbit)\n");
  return 0;
}
