/// Reproduces Table 6: post-synthesis component breakdown of the ISCAS89
/// sequential circuits and JJ savings versus the clocked sequential RSFQ
/// baseline (qSeq role).  DROC counts follow the retimed-pair model:
/// preloaded = one per logical flip-flop, plain = retimed-rank crossings.
/// All circuits run concurrently through the flow batch_runner; results are
/// aggregated in input order, so the table is identical at any thread count.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main(int argc, char** argv) {
  unsigned threads = 4;
  if (argc > 1) {
    const auto parsed = flow::parse_thread_count(argv[1]);
    if (!parsed) {
      std::cerr << "usage: " << argv[0] << " [threads (0 = hardware)]\n";
      return 2;
    }
    threads = *parsed;
  }
  std::cout << "== Table 6: ISCAS89 sequential circuits vs qSeq-style RSFQ ==\n\n";

  struct row {
    const char* name;
    const char* paper_qseq_jj;
    const char* paper_savings;
  };
  const row rows[] = {
      {"s27", "527", "3.3/4.3x"},      {"s298", "3698", "3.0/3.9x"},
      {"s344", "5475", "4.0/5.2x"},    {"s349", "5475", "4.0/5.2x"},
      {"s382", "4934", "2.9/3.8x"},    {"s386", "4580", "3.5/4.6x"},
      {"s400", "5144", "3.1/4.0x"},    {"s420.1", "5661", "4.2/5.5x"},
      {"s444", "5148", "3.0/3.9x"},    {"s510", "7085", "3.1/4.0x"},
      {"s526", "6365", "3.5/4.6x"},    {"s641", "11462", "6.9/9.0x"},
      {"s713", "11421", "6.9/9.0x"},   {"s820", "9797", "4.3/5.6x"},
      {"s832", "9641", "4.4/5.7x"},    {"s838.1", "12710", "4.7/6.1x"}};

  flow::flow_options options;
  options.map.reg_style = register_style::pair_retimed;
  std::vector<std::string> names;
  for (const auto& r : rows) names.emplace_back(r.name);
  const auto report = flow::run_batch(names, options, threads);

  table_printer t({"Circuit", "RSFQ JJ", "#LA/FA", "Dupl",
                   "#DROC (w/o / w)", "xSFQ JJ", "Savings", "Paper: qSeq JJ",
                   "Paper savings"});
  double product1 = 1.0;
  double product2 = 1.0;
  int count = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& entry = report.entries[i];
    if (!entry.ok) {
      std::cerr << "flow failed for " << entry.name << ": " << entry.error
                << "\n";
      return 1;
    }
    const auto& r = rows[i];
    const auto& st = entry.result.mapped.stats;
    const auto& base = entry.result.baseline;
    const double s1 = static_cast<double>(base.jj_without_clock) /
                      static_cast<double>(st.jj);
    const double s2 = static_cast<double>(base.jj_with_clock) /
                      static_cast<double>(st.jj);
    product1 *= s1;
    product2 *= s2;
    ++count;
    t.add_row({r.name, std::to_string(base.jj_without_clock),
               std::to_string(st.la_cells + st.fa_cells),
               table_printer::percent(st.duplication),
               std::to_string(st.drocs_plain) + "/" +
                   std::to_string(st.drocs_preload),
               std::to_string(st.jj),
               table_printer::ratio(s1) + "/" + table_printer::ratio(s2),
               r.paper_qseq_jj, r.paper_savings});
  }
  t.print(std::cout);

  std::cout << "\nGeomean savings: "
            << table_printer::ratio(std::pow(product1, 1.0 / count)) << " / "
            << table_printer::ratio(std::pow(product2, 1.0 / count))
            << " (paper averages: 4.1x / 5.3x).  Preloaded DROCs equal the\n"
            << "flip-flop count; the retimed rank's size varies with the\n"
            << "mid-cut crossings, as in the paper's 18/14-style entries.\n"
            << count << " circuits on " << report.threads
            << " worker threads: " << static_cast<long>(report.flow_ms_sum)
            << " ms of flow time in " << static_cast<long>(report.wall_ms)
            << " ms wall clock.\n";
  return 0;
}
