/// Reproduces Table 6: post-synthesis component breakdown of the ISCAS89
/// sequential circuits and JJ savings versus the clocked sequential RSFQ
/// baseline (qSeq role).  DROC counts follow the retimed-pair model:
/// preloaded = one per logical flip-flop, plain = retimed-rank crossings.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main() {
  std::cout << "== Table 6: ISCAS89 sequential circuits vs qSeq-style RSFQ ==\n\n";

  struct row {
    const char* name;
    const char* paper_qseq_jj;
    const char* paper_savings;
  };
  const row rows[] = {
      {"s27", "527", "3.3/4.3x"},      {"s298", "3698", "3.0/3.9x"},
      {"s344", "5475", "4.0/5.2x"},    {"s349", "5475", "4.0/5.2x"},
      {"s382", "4934", "2.9/3.8x"},    {"s386", "4580", "3.5/4.6x"},
      {"s400", "5144", "3.1/4.0x"},    {"s420.1", "5661", "4.2/5.5x"},
      {"s444", "5148", "3.0/3.9x"},    {"s510", "7085", "3.1/4.0x"},
      {"s526", "6365", "3.5/4.6x"},    {"s641", "11462", "6.9/9.0x"},
      {"s713", "11421", "6.9/9.0x"},   {"s820", "9797", "4.3/5.6x"},
      {"s832", "9641", "4.4/5.7x"},    {"s838.1", "12710", "4.7/6.1x"}};

  table_printer t({"Circuit", "RSFQ JJ", "#LA/FA", "Dupl",
                   "#DROC (w/o / w)", "xSFQ JJ", "Savings", "Paper: qSeq JJ",
                   "Paper savings"});
  double product1 = 1.0;
  double product2 = 1.0;
  int count = 0;
  for (const auto& r : rows) {
    mapping_params p;
    p.reg_style = register_style::pair_retimed;
    const auto flow = run_flow(r.name, p);
    const auto& st = flow.mapped.stats;
    const double s1 = static_cast<double>(flow.baseline.jj_without_clock) /
                      static_cast<double>(st.jj);
    const double s2 = static_cast<double>(flow.baseline.jj_with_clock) /
                      static_cast<double>(st.jj);
    product1 *= s1;
    product2 *= s2;
    ++count;
    t.add_row({r.name, std::to_string(flow.baseline.jj_without_clock),
               std::to_string(st.la_cells + st.fa_cells),
               table_printer::percent(st.duplication),
               std::to_string(st.drocs_plain) + "/" +
                   std::to_string(st.drocs_preload),
               std::to_string(st.jj),
               table_printer::ratio(s1) + "/" + table_printer::ratio(s2),
               r.paper_qseq_jj, r.paper_savings});
  }
  t.print(std::cout);

  std::cout << "\nGeomean savings: "
            << table_printer::ratio(std::pow(product1, 1.0 / count)) << " / "
            << table_printer::ratio(std::pow(product2, 1.0 / count))
            << " (paper averages: 4.1x / 5.3x).  Preloaded DROCs equal the\n"
            << "flip-flop count; the retimed rank's size varies with the\n"
            << "mid-cut crossings, as in the paper's 18/14-style entries.\n";
  return 0;
}
