/// Microbenchmarks for the allocation-free cut engine: cut enumeration with
/// fresh vs reused arenas, MFFC queries on the dense-scratch calculator, and
/// the full optimize script through one reused opt_engine.  Plain chrono (no
/// google-benchmark dependency) so it always builds; CI runs it in Release
/// and archives the PERF lines for trend visibility (no hard gate).
///
///   bench_perf_cuts [circuit] [reps]     (default: c880, 5)
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "aig/cuts.hpp"
#include "benchgen/registry.hpp"
#include "opt/opt_engine.hpp"
#include "opt/rewrite_library.hpp"
#include "opt/script.hpp"

using namespace xsfq;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "c880";
  const int reps = argc > 2 ? std::atoi(argv[2]) : 5;
  if (reps <= 0) {
    std::cerr << "usage: " << argv[0] << " [circuit] [reps>0]\n";
    return 2;
  }

  std::cout << "== bench_perf_cuts: cut engine microbenchmarks (" << circuit
            << ", " << reps << " reps) ==\n\n";
  const aig g = benchgen::make_benchmark(circuit);
  std::cout << circuit << ": " << g.num_gates() << " AIG nodes, depth "
            << g.depth() << "\n";

  // Library construction is a one-time per-process cost; time it explicitly
  // so it never hides inside the first optimize measurement.
  const auto lib_start = clock_type::now();
  rewrite_library::instance();
  const double lib_ms = ms_since(lib_start);
  std::cout << "rewrite library build (once per process): " << lib_ms
            << " ms\n\n";

  const cut_params params{4, 10, true};

  // Fresh engine per enumeration: every arena grows from zero.
  double fresh_ms = 0.0;
  std::size_t num_cuts = 0;
  {
    const auto start = clock_type::now();
    for (int r = 0; r < reps; ++r) {
      cut_engine engine;
      num_cuts = engine.enumerate(g, params).num_cuts();
    }
    fresh_ms = ms_since(start) / reps;
  }

  // Reused engine: arena and scratch recycled (the optimize steady state).
  double reused_ms = 0.0;
  std::size_t arena_bytes = 0;
  cut_engine engine;
  engine.enumerate(g, params);  // reach the high-water mark
  {
    const auto start = clock_type::now();
    for (int r = 0; r < reps; ++r) {
      const auto& set = engine.enumerate(g, params);
      arena_bytes = set.arena_bytes();
    }
    reused_ms = ms_since(start) / reps;
  }
  std::cout << "enumerate_cuts (k=4, limit=10): " << num_cuts << " cuts\n"
            << "  fresh engine per pass:  " << fresh_ms << " ms\n"
            << "  reused engine (arena):  " << reused_ms << " ms, "
            << arena_bytes << " arena bytes\n";

  // MFFC queries over every stored cut, dense-scratch calculator.  The cone
  // sum doubles as the dead-code keep-alive and a self-check value.
  double mffc_ms = 0.0;
  std::uint64_t mffc_queries = 0;
  std::uint64_t mffc_cone_sum = 0;
  {
    mffc_calculator mffc;
    mffc.attach(g);
    const auto& set = engine.cuts();
    const auto start = clock_type::now();
    for (int r = 0; r < reps; ++r) {
      g.foreach_gate([&](aig::node_index n) {
        for (const cut_view c : set[n]) mffc_cone_sum += mffc.size(n, c.leaves());
      });
    }
    mffc_ms = ms_since(start) / reps;
    mffc_queries = mffc.num_queries() / reps;
    mffc_cone_sum /= static_cast<std::uint64_t>(reps);
  }
  std::cout << "mffc queries: " << mffc_queries << " per rep, " << mffc_ms
            << " ms/rep ("
            << (mffc_queries ? 1e6 * mffc_ms / static_cast<double>(mffc_queries)
                             : 0.0)
            << " ns/query), cone sum " << mffc_cone_sum << "\n";

  // Full optimize script through one reused engine (flow steady state).
  double optimize_ms = 0.0;
  opt_counters work;
  std::size_t final_gates = 0;
  {
    opt_engine opt;
    optimize_stats st;
    const auto start = clock_type::now();
    for (int r = 0; r < reps; ++r) {
      final_gates = opt.optimize(g, {}, &st).num_gates();
    }
    optimize_ms = ms_since(start) / reps;
    work = st.work;
  }
  std::cout << "optimize (steady state): " << optimize_ms << " ms/rep -> "
            << final_gates << " gates\n"
            << "  per rep: " << work.passes << " passes, "
            << work.cuts_enumerated << " cuts, " << work.cut_candidates
            << " merge attempts, " << work.mffc_queries << " mffc queries, "
            << work.replacements << " rewrites, " << work.resynth_cache_hits
            << " cache hits, " << work.cut_arena_bytes << " peak arena bytes\n";

  // Machine-readable trend lines for the CI artifact.
  std::cout << "\nPERF circuit=" << circuit << " library_build_ms=" << lib_ms
            << " enumerate_fresh_ms=" << fresh_ms
            << " enumerate_reused_ms=" << reused_ms << " cuts=" << num_cuts
            << " arena_bytes=" << arena_bytes << " mffc_ns_per_query="
            << (mffc_queries ? 1e6 * mffc_ms / static_cast<double>(mffc_queries)
                             : 0.0)
            << " optimize_ms=" << optimize_ms << " final_gates=" << final_gates
            << "\n";
  return 0;
}
