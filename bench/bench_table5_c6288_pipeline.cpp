/// Reproduces Table 5: pipelining the c6288 16x16 multiplier with 0, 1 and 2
/// architectural stages — JJ count, LA/FA cells, duplication, DROC ranks
/// (plain/preloaded), logical depth (without/with splitters) and the circuit
/// vs architectural clock frequencies.
#include <iostream>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main() {
  std::cout << "== Table 5: c6288 pipelining sweep ==\n\n";

  struct paper_row {
    const char* stages;
    const char* jj;
    const char* cells;
    const char* dup;
    const char* droc;
    const char* depth;
    const char* freq;
  };
  const paper_row paper[] = {
      {"0/0", "25853", "3707", "97%", "0/0", "90/170", "0.9/0.5"},
      {"1/2", "27312", "3669", "95%", "91/32", "46/90", "1.6/0.8"},
      {"2/4", "29399", "3572", "89%", "171/123", "24/48", "3.0/1.5"}};

  const aig g = optimize(benchgen::make_benchmark("c6288"));
  std::cout << "c6288 (16x16 array multiplier): " << g.num_gates()
            << " AIG nodes after optimization, depth " << g.depth() << "\n\n";

  table_printer t({"Stages", "#JJ", "#LA/FA", "Dupl", "#DROC (w/o / w)",
                   "Depth", "Freq (GHz)", "Paper JJ", "Paper DROC",
                   "Paper depth", "Paper freq"});
  for (unsigned k : {0u, 1u, 2u}) {
    mapping_params p;
    p.pipeline_stages = k;
    const auto m = map_to_xsfq(g, p);
    const auto& st = m.stats;
    t.add_row({std::to_string(k) + "/" + std::to_string(2 * k),
               std::to_string(st.jj),
               std::to_string(st.la_cells + st.fa_cells),
               table_printer::percent(st.duplication),
               std::to_string(st.drocs_plain) + "/" +
                   std::to_string(st.drocs_preload),
               std::to_string(st.depth) + "/" +
                   std::to_string(st.depth_with_splitters),
               table_printer::fixed(st.circuit_ghz, 1) + "/" +
                   table_printer::fixed(st.architectural_ghz, 1),
               paper[k].jj, paper[k].droc, paper[k].depth, paper[k].freq});
  }
  t.print(std::cout);

  std::cout
      << "\nTrends reproduced: JJ grows sublinearly with DROC ranks (added\n"
         "cut points enable more polarity optimization), logical depth\n"
         "halves per rank pair, circuit frequency scales accordingly, and\n"
         "the architectural frequency is half the circuit frequency because\n"
         "each logical cycle spends an excite and a relax phase.\n";
  return 0;
}
