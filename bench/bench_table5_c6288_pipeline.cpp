/// Reproduces Table 5: pipelining the c6288 16x16 multiplier with 0, 1 and 2
/// architectural stages — JJ count, LA/FA cells, duplication, DROC ranks
/// (plain/preloaded), logical depth (without/with splitters) and the circuit
/// vs architectural clock frequencies.
/// The multiplier is optimized once; the three pipeline mappings then run
/// concurrently through the flow batch_runner (results aggregated in input
/// order, so the table is identical at any thread count).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main(int argc, char** argv) {
  unsigned threads = 3;
  if (argc > 1) {
    const auto parsed = flow::parse_thread_count(argv[1]);
    if (!parsed) {
      std::cerr << "usage: " << argv[0] << " [threads (0 = hardware)]\n";
      return 2;
    }
    threads = *parsed;
  }
  std::cout << "== Table 5: c6288 pipelining sweep ==\n\n";

  struct paper_row {
    const char* stages;
    const char* jj;
    const char* cells;
    const char* dup;
    const char* droc;
    const char* depth;
    const char* freq;
  };
  const paper_row paper[] = {
      {"0/0", "25853", "3707", "97%", "0/0", "90/170", "0.9/0.5"},
      {"1/2", "27312", "3669", "95%", "91/32", "46/90", "1.6/0.8"},
      {"2/4", "29399", "3572", "89%", "171/123", "24/48", "3.0/1.5"}};

  const aig g = optimize(benchgen::make_benchmark("c6288"));
  std::cout << "c6288 (16x16 array multiplier): " << g.num_gates()
            << " AIG nodes after optimization, depth " << g.depth() << "\n\n";

  // One preset -> map flow per pipeline depth, all on the worker pool.
  flow::batch_runner runner(threads);
  std::vector<std::string> names;
  std::vector<std::function<flow::flow_result()>> jobs;
  for (unsigned k : {0u, 1u, 2u}) {
    names.push_back(std::to_string(k) + "/" + std::to_string(2 * k));
    jobs.push_back([&g, k] {
      mapping_params p;
      p.pipeline_stages = k;
      flow::flow f("pipeline");
      f.add_stage(flow::stages::preset(g, "c6288"));
      f.add_stage(flow::stages::map(p));
      return f.run();
    });
  }
  const auto report = runner.run_jobs(names, std::move(jobs));

  table_printer t({"Stages", "#JJ", "#LA/FA", "Dupl", "#DROC (w/o / w)",
                   "Depth", "Freq (GHz)", "Paper JJ", "Paper DROC",
                   "Paper depth", "Paper freq"});
  for (unsigned k : {0u, 1u, 2u}) {
    const auto& entry = report.entries[k];
    if (!entry.ok) {
      std::cerr << "flow failed for " << entry.name << ": " << entry.error
                << "\n";
      return 1;
    }
    const auto& st = entry.result.mapped.stats;
    t.add_row({entry.name, std::to_string(st.jj),
               std::to_string(st.la_cells + st.fa_cells),
               table_printer::percent(st.duplication),
               std::to_string(st.drocs_plain) + "/" +
                   std::to_string(st.drocs_preload),
               std::to_string(st.depth) + "/" +
                   std::to_string(st.depth_with_splitters),
               table_printer::fixed(st.circuit_ghz, 1) + "/" +
                   table_printer::fixed(st.architectural_ghz, 1),
               paper[k].jj, paper[k].droc, paper[k].depth, paper[k].freq});
  }
  t.print(std::cout);

  std::cout
      << "\nTrends reproduced: JJ grows sublinearly with DROC ranks (added\n"
         "cut points enable more polarity optimization), logical depth\n"
         "halves per rank pair, circuit frequency scales accordingly, and\n"
         "the architectural frequency is half the circuit frequency because\n"
         "each logical cycle spends an excite and a relax phase.\n";
  return 0;
}
