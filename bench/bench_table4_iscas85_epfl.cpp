/// Reproduces Table 4: post-synthesis component breakdown for ISCAS85 and
/// EPFL circuits, JJ counts, and savings versus the path-balanced RSFQ
/// baseline (PBMap role), without and with clock-splitting overhead.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main() {
  std::cout << "== Table 4: ISCAS85 + EPFL vs clocked-RSFQ baseline ==\n"
            << "(baseline recomputed on the same generated circuits;\n"
            << " paper's PBMap numbers and savings quoted alongside)\n\n";

  struct row {
    const char* name;
    const char* paper_pbmap_jj;
    const char* paper_savings;
  };
  const row rows[] = {
      {"c880", "12909", "4.4/5.7x"},     {"c1908", "12013", "3.6/4.6x"},
      {"c499", "7758", "1.7/2.2x"},      {"c3540", "28300", "2.5/3.3x"},
      {"c5315", "52033", "4.0/5.1x"},    {"c7552", "48482", "2.8/3.7x"},
      {"int2float", "6432", "4.2/5.5x"}, {"dec", "5469", "1.9/2.5x"},
      {"priority", "102085", "18.6/24.1x"}, {"sin", "215318", "3.1/4.0x"},
      {"cavlc", "16339", "3.3/4.2x"}};

  table_printer t({"Circuit", "RSFQ JJ", "#LA/FA", "Dupl", "#DROC", "xSFQ JJ",
                   "Savings", "Paper: PBMap JJ", "Paper savings"});
  double product_no_clock = 1.0;
  double product_clock = 1.0;
  int count = 0;
  for (const auto& r : rows) {
    const auto flow = run_flow(r.name);
    const auto& st = flow.mapped.stats;
    const double s1 = static_cast<double>(flow.baseline.jj_without_clock) /
                      static_cast<double>(st.jj);
    const double s2 = static_cast<double>(flow.baseline.jj_with_clock) /
                      static_cast<double>(st.jj);
    product_no_clock *= s1;
    product_clock *= s2;
    ++count;
    t.add_row({r.name, std::to_string(flow.baseline.jj_without_clock),
               std::to_string(st.la_cells + st.fa_cells),
               table_printer::percent(st.duplication),
               std::to_string(st.drocs_plain + st.drocs_preload),
               std::to_string(st.jj),
               table_printer::ratio(s1) + "/" + table_printer::ratio(s2),
               r.paper_pbmap_jj, r.paper_savings});
  }
  t.print(std::cout);

  const double geo1 = std::pow(product_no_clock, 1.0 / count);
  const double geo2 = std::pow(product_clock, 1.0 / count);
  std::cout << "\nGeomean savings: " << table_printer::ratio(geo1) << " / "
            << table_printer::ratio(geo2)
            << " (paper reports 4.5x / 5.9x averages on this table;\n"
            << " xSFQ circuits use no DROCs and need no clock tree).\n";
  return 0;
}
