/// Reproduces Table 4: post-synthesis component breakdown for ISCAS85 and
/// EPFL circuits, JJ counts, and savings versus the path-balanced RSFQ
/// baseline (PBMap role), without and with clock-splitting overhead.
/// All circuits run concurrently through the flow batch_runner; results are
/// aggregated in input order, so the table is identical at any thread count.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main(int argc, char** argv) {
  unsigned threads = 4;
  if (argc > 1) {
    const auto parsed = flow::parse_thread_count(argv[1]);
    if (!parsed) {
      std::cerr << "usage: " << argv[0] << " [threads (0 = hardware)]\n";
      return 2;
    }
    threads = *parsed;
  }
  std::cout << "== Table 4: ISCAS85 + EPFL vs clocked-RSFQ baseline ==\n"
            << "(baseline recomputed on the same generated circuits;\n"
            << " paper's PBMap numbers and savings quoted alongside)\n\n";

  struct row {
    const char* name;
    const char* paper_pbmap_jj;
    const char* paper_savings;
  };
  const row rows[] = {
      {"c880", "12909", "4.4/5.7x"},     {"c1908", "12013", "3.6/4.6x"},
      {"c499", "7758", "1.7/2.2x"},      {"c3540", "28300", "2.5/3.3x"},
      {"c5315", "52033", "4.0/5.1x"},    {"c7552", "48482", "2.8/3.7x"},
      {"int2float", "6432", "4.2/5.5x"}, {"dec", "5469", "1.9/2.5x"},
      {"priority", "102085", "18.6/24.1x"}, {"sin", "215318", "3.1/4.0x"},
      {"cavlc", "16339", "3.3/4.2x"}};

  std::vector<std::string> names;
  for (const auto& r : rows) names.emplace_back(r.name);
  const auto report = flow::run_batch(names, {}, threads);

  table_printer t({"Circuit", "RSFQ JJ", "#LA/FA", "Dupl", "#DROC", "xSFQ JJ",
                   "Savings", "Paper: PBMap JJ", "Paper savings"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& entry = report.entries[i];
    if (!entry.ok) {
      std::cerr << "flow failed for " << entry.name << ": " << entry.error
                << "\n";
      return 1;
    }
    const auto& r = rows[i];
    const auto& st = entry.result.mapped.stats;
    const auto& base = entry.result.baseline;
    const double s1 = static_cast<double>(base.jj_without_clock) /
                      static_cast<double>(st.jj);
    const double s2 = static_cast<double>(base.jj_with_clock) /
                      static_cast<double>(st.jj);
    t.add_row({r.name, std::to_string(base.jj_without_clock),
               std::to_string(st.la_cells + st.fa_cells),
               table_printer::percent(st.duplication),
               std::to_string(st.drocs_plain + st.drocs_preload),
               std::to_string(st.jj),
               table_printer::ratio(s1) + "/" + table_printer::ratio(s2),
               r.paper_pbmap_jj, r.paper_savings});
  }
  t.print(std::cout);

  const auto summary = flow::summarize(report);
  std::cout << "\nGeomean savings: " << table_printer::ratio(summary.geomean_savings)
            << " / " << table_printer::ratio(summary.geomean_savings_clock)
            << " (paper reports 4.5x / 5.9x averages on this table;\n"
            << " xSFQ circuits use no DROCs and need no clock tree).\n"
            << summary.circuits << " circuits on " << report.threads
            << " worker threads: " << static_cast<long>(report.flow_ms_sum)
            << " ms of flow time in " << static_cast<long>(report.wall_ms)
            << " ms wall clock.\n";
  return 0;
}
