/// Reproduces Table 3: duplication penalty of the EPFL control circuits
/// after the Sec. 3.1 optimizations (AIG opt + output phase assignment),
/// plus the Sec. 3.1.5 voter discussion (SOP form reaches 0%).
#include <iostream>

#include "bench_common.hpp"
#include "benchgen/epfl.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main() {
  std::cout << "== Table 3: duplication penalty, EPFL control circuits ==\n\n";
  // Paper-reported duplication per circuit.
  const std::pair<const char*, const char*> paper[] = {
      {"arbiter", "0%"},  {"cavlc", "8%"},     {"ctrl", "9%"},
      {"dec", "0%"},      {"i2c", "6%"},       {"int2float", "6%"},
      {"mem_ctrl", "6%"}, {"priority", "22%"}, {"router", "44%"},
      {"voter", "99%"}};

  table_printer t({"Circuit", "AIG nodes", "Cells", "Dupl (ours)",
                   "Dupl (paper)"});
  for (const auto& [name, reported] : paper) {
    const auto flow = run_flow(name);
    const auto& st = flow.mapped.stats;
    t.add_row({name, std::to_string(st.nodes_used),
               std::to_string(st.la_cells + st.fa_cells),
               table_printer::percent(st.duplication), reported});
  }
  t.print(std::cout);

  std::cout << "\nSec. 3.1.5 voter note — alternative sum-of-products form:\n";
  {
    const auto flow = run_flow("voter_sop");
    std::cout << "  voter_sop (15-input majority, monotone SOP): duplication "
              << table_printer::percent(flow.mapped.stats.duplication)
              << " (paper: 0%)\n";
  }
  std::cout << "\nShape check: generated equivalents reproduce the paper's\n"
            << "pattern — near-zero duplication for decoder/arbiter-style\n"
            << "control, elevated for comparator-style logic (router/voter),\n"
            << "and 0% for the monotone SOP voter.\n";
  return 0;
}
