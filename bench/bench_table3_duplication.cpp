/// Reproduces Table 3: duplication penalty of the EPFL control circuits
/// after the Sec. 3.1 optimizations (AIG opt + output phase assignment),
/// plus the Sec. 3.1.5 voter discussion (SOP form reaches 0%).
/// All circuits (voter_sop included) run concurrently through the flow
/// batch_runner; aggregation happens in input order, so the table is
/// identical at any thread count.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "benchgen/epfl.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main(int argc, char** argv) {
  unsigned threads = 4;
  if (argc > 1) {
    const auto parsed = flow::parse_thread_count(argv[1]);
    if (!parsed) {
      std::cerr << "usage: " << argv[0] << " [threads (0 = hardware)]\n";
      return 2;
    }
    threads = *parsed;
  }
  std::cout << "== Table 3: duplication penalty, EPFL control circuits ==\n\n";
  // Paper-reported duplication per circuit.
  const std::pair<const char*, const char*> paper[] = {
      {"arbiter", "0%"},  {"cavlc", "8%"},     {"ctrl", "9%"},
      {"dec", "0%"},      {"i2c", "6%"},       {"int2float", "6%"},
      {"mem_ctrl", "6%"}, {"priority", "22%"}, {"router", "44%"},
      {"voter", "99%"}};

  std::vector<std::string> names;
  for (const auto& [name, reported] : paper) names.emplace_back(name);
  names.emplace_back("voter_sop");  // Sec. 3.1.5 sum-of-products variant
  const auto report = flow::run_batch(names, {}, threads);

  table_printer t({"Circuit", "AIG nodes", "Cells", "Dupl (ours)",
                   "Dupl (paper)"});
  for (std::size_t i = 0; i < std::size(paper); ++i) {
    const auto& entry = report.entries[i];
    if (!entry.ok) {
      std::cerr << "flow failed for " << entry.name << ": " << entry.error
                << "\n";
      return 1;
    }
    const auto& st = entry.result.mapped.stats;
    t.add_row({paper[i].first, std::to_string(st.nodes_used),
               std::to_string(st.la_cells + st.fa_cells),
               table_printer::percent(st.duplication), paper[i].second});
  }
  t.print(std::cout);

  std::cout << "\nSec. 3.1.5 voter note — alternative sum-of-products form:\n";
  {
    const auto& entry = report.entries.back();
    if (!entry.ok) {
      std::cerr << "flow failed for " << entry.name << ": " << entry.error
                << "\n";
      return 1;
    }
    std::cout << "  voter_sop (15-input majority, monotone SOP): duplication "
              << table_printer::percent(entry.result.mapped.stats.duplication)
              << " (paper: 0%)\n";
  }
  std::cout << "\nShape check: generated equivalents reproduce the paper's\n"
            << "pattern — near-zero duplication for decoder/arbiter-style\n"
            << "control, elevated for comparator-style logic (router/voter),\n"
            << "and 0% for the monotone SOP voter.\n"
            << report.entries.size() << " circuits on " << report.threads
            << " worker threads: " << static_cast<long>(report.flow_ms_sum)
            << " ms of flow time in " << static_cast<long>(report.wall_ms)
            << " ms wall clock.\n";
  return 0;
}
