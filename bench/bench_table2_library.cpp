/// Reproduces Table 2: delays and JJ counts of the xSFQ cell library, plus a
/// demonstration of the characterization methodology (delay extracted from
/// junction 2*pi phase slips) on the analog JTL deck, and the Liberty dump.
#include <iostream>

#include "analog/cells.hpp"
#include "cells/cell_library.hpp"
#include "util/table_printer.hpp"

using namespace xsfq;

int main() {
  std::cout << "== Table 2: xSFQ cell library (SFQ5ee characterization) ==\n\n";
  const auto& lib = cell_library::sfq5ee();
  table_printer t({"Cell", "Delay (ps)", "# JJs", "Delay PTL (ps)",
                   "# JJs PTL"});
  for (const auto& s : lib.specs()) {
    std::string delay = table_printer::fixed(s.delay_ps, 1);
    std::string delay_ptl = table_printer::fixed(s.delay_ps_ptl, 1);
    std::string jj = std::to_string(s.jj_count);
    std::string jj_ptl = std::to_string(s.jj_count_ptl);
    if (s.type == cell_type::droc || s.type == cell_type::droc_preload) {
      delay += " (Qn " + table_printer::fixed(s.delay_qn_ps, 1) + ")";
      delay_ptl += " (Qn " + table_printer::fixed(s.delay_qn_ps_ptl, 1) + ")";
    }
    t.add_row({cell_type_name(s.type), delay, jj, delay_ptl, jj_ptl});
  }
  t.print(std::cout);

  std::cout << "\nCharacterization methodology demo (analog RCSJ deck):\n";
  {
    auto d = analog::make_jtl(3);
    d.ckt.add_pulse(d.inputs[0], 20.0);
    const auto r = d.ckt.run(60.0);
    const double delay =
        analog::propagation_delay_ps(r, d.input_jjs[0], d.output_jjs[0]);
    std::cout << "  3-stage JTL: input->output delay from phase slips = "
              << table_printer::fixed(delay, 2) << " ps ("
              << table_printer::fixed(delay / 2.0, 2)
              << " ps per stage; paper's JTL arc: 4.6 ps with the\n"
              << "  SFQ5ee HSPICE model — same order, our generic RCSJ "
                 "parameters)\n";
  }

  std::cout << "\nLiberty (.lib) header of the generated library:\n";
  const std::string liberty = lib.to_liberty("xsfq_sfq5ee");
  std::cout << liberty.substr(0, liberty.find("cell(FA)")) << "...\n("
            << liberty.size() << " bytes total; 1x1 lookup tables per "
            << "Sec. 2.3)\n";
  return 0;
}
