/// Ablation: Eq. (1)'s closed-form splitter count versus the exact
/// fanout-tree count on the mapped netlists, across all suites.
#include <iostream>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main() {
  std::cout << "== Ablation: Eq. (1) splitter estimate vs exact count ==\n"
            << "  N_splt = N_gate + N_out - N_inp   (Sec. 3.1.2)\n\n";
  table_printer t({"Circuit", "Cells", "Exact splitters", "Eq. (1)",
                   "Delta"});
  for (const char* name : {"c432", "c499", "c880", "c1908", "c3540",
                           "c6288", "cavlc", "ctrl", "dec", "int2float",
                           "priority", "router", "voter_sop"}) {
    const auto flow = run_flow(name);
    const auto& st = flow.mapped.stats;
    const long delta =
        static_cast<long>(st.splitters) - st.eq1_splitters;
    t.add_row({name, std::to_string(st.la_cells + st.fa_cells),
               std::to_string(st.splitters),
               std::to_string(st.eq1_splitters), std::to_string(delta)});
  }
  t.print(std::cout);
  std::cout << "\nEq. (1) is exact whenever every input rail is consumed at\n"
            << "least once (a positive delta indicates unused input rails,\n"
            << "which Eq. (1) counts as available signals).\n";
  return 0;
}
