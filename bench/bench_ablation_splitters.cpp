/// Ablation: Eq. (1)'s closed-form splitter count versus the exact
/// fanout-tree count on the mapped netlists, across all suites.  The
/// circuits run concurrently on the flow batch_runner (input-ordered
/// aggregation keeps the table identical at any thread count).
///
///   $ ./bench_ablation_splitters [threads]
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main(int argc, char** argv) {
  unsigned threads = 4;
  if (argc > 1) {
    const auto parsed = flow::parse_thread_count(argv[1]);
    if (!parsed) {
      std::cerr << "usage: " << argv[0] << " [threads (0 = hardware)]\n";
      return 2;
    }
    threads = *parsed;
  }
  std::cout << "== Ablation: Eq. (1) splitter estimate vs exact count ==\n"
            << "  N_splt = N_gate + N_out - N_inp   (Sec. 3.1.2)\n\n";

  const std::vector<std::string> names = {
      "c432", "c499", "c880", "c1908", "c3540", "c6288", "cavlc", "ctrl",
      "dec", "int2float", "priority", "router", "voter_sop"};
  const auto report = flow::run_batch(names, {}, threads);

  table_printer t({"Circuit", "Cells", "Exact splitters", "Eq. (1)",
                   "Delta"});
  for (const auto& entry : report.entries) {
    if (!entry.ok) {
      std::cerr << "flow failed for " << entry.name << ": " << entry.error
                << "\n";
      return 1;
    }
    const auto& st = entry.result.mapped.stats;
    const long delta =
        static_cast<long>(st.splitters) - st.eq1_splitters;
    t.add_row({entry.name, std::to_string(st.la_cells + st.fa_cells),
               std::to_string(st.splitters),
               std::to_string(st.eq1_splitters), std::to_string(delta)});
  }
  t.print(std::cout);
  std::cout << "\nEq. (1) is exact whenever every input rail is consumed at\n"
            << "least once (a positive delta indicates unused input rails,\n"
            << "which Eq. (1) counts as available signals).\n"
            << names.size() << " circuits on " << report.threads
            << " worker threads: " << static_cast<long>(report.flow_ms_sum)
            << " ms of flow time in " << static_cast<long>(report.wall_ms)
            << " ms wall clock.\n";
  return 0;
}
