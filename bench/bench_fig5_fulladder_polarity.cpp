/// Reproduces Figure 5: polarity-optimized full adders — 11 LA/FA cells with
/// all-positive outputs (panel i) and 10 cells with coutn retained (panel ii,
/// the domino-logic output phase assignment), 58/138 JJs.
#include <iostream>

#include "bench_common.hpp"
#include "pulsesim/pulse_sim.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main() {
  std::cout << "== Figure 5: full-adder polarity optimization ==\n\n";
  const aig fa = paper_full_adder_aig();

  table_printer t({"Variant", "LA", "FA", "Cells", "Splitters", "JJ",
                   "JJ (PTL)", "Paper"});
  auto add = [&](const char* label, polarity_mode mode, const char* paper) {
    mapping_params p;
    p.polarity = mode;
    const auto m = map_to_xsfq(fa, p);
    t.add_row({label, std::to_string(m.stats.la_cells),
               std::to_string(m.stats.fa_cells),
               std::to_string(m.stats.la_cells + m.stats.fa_cells),
               std::to_string(m.stats.splitters), std::to_string(m.stats.jj),
               std::to_string(m.stats.jj_ptl), paper});
    const bool ok = pulse_simulator::equivalent_to_aig(fa, m, 16);
    if (!ok) std::cout << "ERROR: " << label << " failed pulse validation\n";
  };
  add("LA-FA pairs (Sec 3.1.3)", polarity_mode::direct_dual_rail,
      "14 cells");
  add("positive outputs (Fig 5i)", polarity_mode::positive_outputs,
      "11 cells");
  add("optimized polarity (Fig 5ii)", polarity_mode::optimized,
      "10 cells, 6 splt, 58/138 JJ");
  t.print(std::cout);

  // Which polarity did the heuristic choose?
  mapping_params p;
  p.polarity = polarity_mode::optimized;
  const auto m = map_to_xsfq(fa, p);
  std::cout << "\nheuristic output phases: ";
  for (std::size_t i = 0; i < m.co_negated.size(); ++i) {
    std::cout << fa.po_name(i) << (m.co_negated[i] ? "=negative " : "=positive ");
  }
  std::cout << "\n(paper Fig 5ii retains coutn — the negative carry rail)\n";
  return 0;
}
