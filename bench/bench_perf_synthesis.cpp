/// Synthesis runtime scaling (google-benchmark): optimize + map across
/// multiplier sizes and the benchmark suites — demonstrates the laptop-scale
/// claim of the flow ("no customization, off-the-shelf AIG optimization").
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pulsesim/pulse_sim.hpp"
#include "benchgen/blocks.hpp"

using namespace xsfq;

namespace {

aig make_multiplier(unsigned width) {
  aig g;
  std::vector<signal> a;
  std::vector<signal> b;
  for (unsigned i = 0; i < width; ++i) a.push_back(g.create_pi());
  for (unsigned i = 0; i < width; ++i) b.push_back(g.create_pi());
  for (const signal s : blocks::array_multiplier(g, a, b)) g.create_po(s);
  return g;
}

void bm_optimize_multiplier(benchmark::State& state) {
  const aig g = make_multiplier(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize(g).num_gates());
  }
  state.SetComplexityN(state.range(0));
}

void bm_map_multiplier(benchmark::State& state) {
  const aig g = optimize(make_multiplier(static_cast<unsigned>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_to_xsfq(g).stats.jj);
  }
  state.SetComplexityN(state.range(0));
}

void bm_polarity_heuristic(benchmark::State& state) {
  const aig g = optimize(make_multiplier(static_cast<unsigned>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_co_polarities(g).size());
  }
}

void bm_full_flow_benchmark(benchmark::State& state,
                            const std::string& name) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::run_flow(name).mapped.stats.jj);
  }
}

void bm_pulse_sim_cycle(benchmark::State& state) {
  const aig g = optimize(benchgen::make_benchmark("c432"));
  const auto m = map_to_xsfq(g);
  pulse_simulator sim(m.netlist);
  std::vector<bool> pis(g.num_pis(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_cycle(pis).outputs.size());
  }
}

}  // namespace

BENCHMARK(bm_optimize_multiplier)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK(bm_map_multiplier)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK(bm_polarity_heuristic)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_full_flow_benchmark, c880, std::string("c880"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_full_flow_benchmark, s641, std::string("s641"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_pulse_sim_cycle)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
