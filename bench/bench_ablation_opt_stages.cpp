/// Ablation: contribution of each optimization stage to the final JJ count —
/// direct dual-rail mapping (Sec 3.1.1), + AIG optimization (3.1.3),
/// + positive-output demand propagation (3.1.4), + output phase assignment
/// (3.1.5).  This quantifies each section's claim separately.
///
/// The four configurations per circuit run as one batch on the flow
/// batch_runner (per-entry options); the three optimized configurations
/// share one optimize through the runner's result cache, so each circuit is
/// optimized once no matter how many mapping variants the table needs.
///
///   $ ./bench_ablation_opt_stages [threads]
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main(int argc, char** argv) {
  unsigned threads = 4;
  if (argc > 1) {
    const auto parsed = flow::parse_thread_count(argv[1]);
    if (!parsed) {
      std::cerr << "usage: " << argv[0] << " [threads (0 = hardware)]\n";
      return 2;
    }
    threads = *parsed;
  }
  std::cout << "== Ablation: optimization stages (JJ without PTL) ==\n\n";

  const std::vector<std::string> circuits = {
      "c432", "c880", "c1908", "cavlc", "int2float",
      "priority", "router", "voter_sop", "dec"};

  // Four flow configurations per circuit, in table-column order.
  const auto options_for = [](polarity_mode mode, bool optimize_aig) {
    flow::flow_options o;
    o.map.polarity = mode;
    o.run_optimize = optimize_aig;
    o.run_baseline = false;  // the ablation only compares xSFQ JJ counts
    return o;
  };
  const flow::flow_options configs[] = {
      options_for(polarity_mode::direct_dual_rail, false),
      options_for(polarity_mode::direct_dual_rail, true),
      options_for(polarity_mode::positive_outputs, true),
      options_for(polarity_mode::optimized, true)};

  std::vector<std::string> names;
  std::vector<flow::flow_options> per_entry;
  for (const auto& circuit : circuits) {
    for (const auto& config : configs) {
      names.push_back(circuit);
      per_entry.push_back(config);
    }
  }

  flow::batch_runner runner(threads);
  const auto report = runner.run(names, per_entry);

  table_printer t({"Circuit", "direct (raw)", "direct (opt AIG)",
                   "+positive outs", "+phase assign", "total gain"});
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    std::size_t jj[4] = {};
    for (std::size_t c = 0; c < 4; ++c) {
      const auto& entry = report.entries[i * 4 + c];
      if (!entry.ok) {
        std::cerr << "flow failed for " << entry.name << ": " << entry.error
                  << "\n";
        return 1;
      }
      jj[c] = entry.result.mapped.stats.jj;
    }
    t.add_row({circuits[i], std::to_string(jj[0]), std::to_string(jj[1]),
               std::to_string(jj[2]), std::to_string(jj[3]),
               table_printer::ratio(static_cast<double>(jj[0]) /
                                    static_cast<double>(jj[3]))});
  }
  t.print(std::cout);

  const auto cache = runner.cache_stats();
  std::cout << "\nEvery stage is monotonically beneficial; demand-driven\n"
            << "polarity (3.1.4) contributes the largest single step, as the\n"
            << "paper's 100% -> Table 3 duplication reduction implies.\n"
            << report.entries.size() << " flows on " << report.threads
            << " worker threads (" << runner.steals() << " steals): "
            << static_cast<long>(report.flow_ms_sum) << " ms of flow time in "
            << static_cast<long>(report.wall_ms) << " ms wall clock; "
            << "optimize cache " << cache.opt_hits << " hits / "
            << cache.opt_misses << " misses.\n";
  return 0;
}
