/// Ablation: contribution of each optimization stage to the final JJ count —
/// direct dual-rail mapping (Sec 3.1.1), + AIG optimization (3.1.3),
/// + positive-output demand propagation (3.1.4), + output phase assignment
/// (3.1.5).  This quantifies each section's claim separately.
#include <iostream>

#include "bench_common.hpp"

using namespace xsfq;
using namespace xsfq::bench;

int main() {
  std::cout << "== Ablation: optimization stages (JJ without PTL) ==\n\n";
  table_printer t({"Circuit", "direct (raw)", "direct (opt AIG)",
                   "+positive outs", "+phase assign", "total gain"});
  for (const char* name : {"c432", "c880", "c1908", "cavlc", "int2float",
                           "priority", "router", "voter_sop", "dec"}) {
    const aig raw = benchgen::make_benchmark(name);
    const aig opt = optimize(raw);

    auto jj_for = [&](const aig& g, polarity_mode mode) {
      mapping_params p;
      p.polarity = mode;
      return map_to_xsfq(g, p).stats.jj;
    };
    const auto direct_raw = jj_for(raw, polarity_mode::direct_dual_rail);
    const auto direct_opt = jj_for(opt, polarity_mode::direct_dual_rail);
    const auto positive = jj_for(opt, polarity_mode::positive_outputs);
    const auto assigned = jj_for(opt, polarity_mode::optimized);
    t.add_row({name, std::to_string(direct_raw), std::to_string(direct_opt),
               std::to_string(positive), std::to_string(assigned),
               table_printer::ratio(static_cast<double>(direct_raw) /
                                    static_cast<double>(assigned))});
  }
  t.print(std::cout);
  std::cout << "\nEvery stage is monotonically beneficial; demand-driven\n"
            << "polarity (3.1.4) contributes the largest single step, as the\n"
            << "paper's 100% -> Table 3 duplication reduction implies.\n";
  return 0;
}
