/// Reproduces Figure 3: DROC cell with DC-to-SFQ preloading — block-level
/// behaviour in the RCSJ transient simulator.
#include <cmath>
#include <cstdio>

#include "analog/cells.hpp"

using namespace xsfq::analog;

namespace {

void render(const char* label, const circuit::probe_data& data,
            std::size_t jj) {
  std::printf("  %-10s ", label);
  for (std::size_t i = 0; i < data.time_ps.size(); i += 4) {
    const int slips = static_cast<int>(std::floor(
        (data.jj_phase[jj][i] + 3.14159) / 6.28318));
    std::printf("%c", slips <= 0 ? '_' : '#');
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Figure 3: DROC with DC-to-SFQ preloading ==\n\n");

  std::printf("Preload (DC ramp 10-30ps) then clock @60ps -> readout fires:\n");
  {
    auto d = make_dro_preload();
    d.ckt.add_source(d.inputs[2],
                     [](double t) { return t > 10 && t < 30 ? 0.12 : 0.0; });
    d.ckt.add_pulse(d.inputs[1], 60.0);
    const auto r = d.ckt.run(100.0);
    render("preload", r, d.input_jjs[1]);
    render("clock", r, d.input_jjs[2]);
    render("readout", r, d.output_jjs[0]);
    std::printf("  -> readout pulses: %zu (expected 1)\n\n",
                circuit::phase_slips(r, d.output_jjs[0]).size());
  }
  std::printf("Clock @60ps with nothing stored -> silent:\n");
  {
    auto d = make_dro_preload();
    d.ckt.add_pulse(d.inputs[1], 60.0);
    const auto r = d.ckt.run(100.0);
    render("clock", r, d.input_jjs[2]);
    render("readout", r, d.output_jjs[0]);
    std::printf("  -> readout pulses: %zu (expected 0)\n\n",
                circuit::phase_slips(r, d.output_jjs[0]).size());
  }
  std::printf("Data pulse @20ps then clock @60ps (normal DRO write/read):\n");
  {
    auto d = make_dro_preload();
    d.ckt.add_pulse(d.inputs[0], 20.0);
    d.ckt.add_pulse(d.inputs[1], 60.0);
    const auto r = d.ckt.run(100.0);
    render("data", r, d.input_jjs[0]);
    render("readout", r, d.output_jjs[0]);
    std::printf("  -> readout pulses: %zu (expected 1)\n\n",
                circuit::phase_slips(r, d.output_jjs[0]).size());
  }
  std::printf(
      "The preloading path costs 9 JJs (DC-to-SFQ 4 + merger 5), matching\n"
      "Table 2's DROC 13 -> 22 JJ difference.\n");
  return 0;
}
