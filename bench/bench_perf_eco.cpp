/// bench_perf_eco — edit→resynthesize latency through the live service path.
///
///   bench_perf_eco [reps] [--json=FILE] [--trace]
///                                         (default: 16 reps per edit size)
///
/// Spins an in-process daemon (Unix socket, no disk cache — the interactive
/// regime is memory/region-cache bound) and drives it over one persistent
/// client connection, exactly like an interactive ECO session: submit the
/// base circuit cold, then chains of synth_delta requests whose edit
/// scripts flip 1, 8, and 64 gates per request.  Every edit targets a
/// previously untouched mid-circuit gate, so each request's circuit is a
/// new content hash — never a disguised full-result cache hit — and the
/// reported figure is min-over-reps of the client-observed round trip
/// (connect + encode + admission + incremental flow + response), the
/// steady state the region cache is designed for.
///
/// Circuits and grains follow docs/operations.md ("Interactive ECO"):
/// c880 at --partition-grain=64, c6288 at --partition-grain=24.  --json
/// emits the bench_perf_eco block consumed by tools/check_perf_regression.py
/// against bench/BENCH_baseline.json, where an absolute cap (not a relative
/// gate) enforces the headline: a single-gate edit on c6288 resynthesizes
/// in under 2 ms end to end.
///
/// --trace stamps a fresh v6 trace id on every request and, per session,
/// reads the last request's span waterfall back from the daemon
/// (PERF_ECO_TRACE lines).  Reported-only: CI runs it alongside the gated
/// untraced run to show the per-request collector riding the hot path, but
/// the regression gate keys off the untraced JSON figures.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "aig/edit.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/synth_service.hpp"
#include "util/log.hpp"

using namespace xsfq;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

/// --trace id allocator: unique per request within this process/daemon pair
/// (both in-process, so a plain counter under a recognizable hi word is
/// enough — no need for real randomness in a benchmark).
bool g_trace = false;
std::uint64_t next_trace_lo() {
  static std::uint64_t counter = 0;
  return ++counter;
}
constexpr std::uint64_t bench_trace_hi = 0xecb0'0000'0000'0001ull;

std::string sig_token(const signal s) {
  return (s.is_complemented() ? std::string("!") : std::string()) + "n" +
         std::to_string(s.index());
}

/// One ECO session against a shared daemon: cold submit, then `reps`
/// chained delta requests per edit size.  `next_gate` walks the gate array
/// from the middle so every request flips fresh gates (wrapping only after
/// every gate was visited once — still a new parity state, never a repeat).
struct eco_session {
  serve::client& cli;
  serve::synth_request base;
  aig current;
  std::uint64_t current_hash;
  std::vector<aig::node_index> gates;
  std::size_t next_flip = 0;
  std::unordered_set<std::uint64_t> seen;  ///< every hash served so far
  std::uint64_t last_trace_lo = 0;         ///< id of the latest request

  eco_session(serve::client& client, const std::string& name, unsigned grain)
      : cli(client), base(serve::make_request_for_spec(name)) {
    base.partition_grain = grain;
    current = serve::load_request_circuit(base);
    current_hash = current.content_hash();
    seen.insert(current_hash);
    for (aig::node_index n = 0; n < current.size(); ++n) {
      if (current.is_gate(n)) gates.push_back(n);
    }
    std::rotate(gates.begin(), gates.begin() + gates.size() / 2, gates.end());
  }

  /// Stamps a fresh trace id on `req` when --trace is active (the id rides
  /// the synth_request tail, so deltas stamp their embedded base).
  void stamp(serve::synth_request& req) {
    if (!g_trace) return;
    last_trace_lo = next_trace_lo();
    req.trace_hi = bench_trace_hi;
    req.trace_lo = last_trace_lo;
  }

  double submit_cold() {
    stamp(base);
    const auto start = clock_type::now();
    const serve::synth_response r = cli.submit(base);
    const double ms = ms_since(start);
    if (!r.ok || r.content_hash != current_hash) {
      std::fprintf(stderr, "cold submit failed: %s\n", r.error.c_str());
      std::exit(1);
    }
    return ms;
  }

  /// Flips one fanin of `size` fresh gates and round-trips the delta.  The
  /// flip counter walks (gate, fanin) slots — all of fanin1 first, then all
  /// of fanin0 — so small circuits survive long sessions without ever
  /// toggling back into a previously served parity state; the `seen` set
  /// turns any regression of that property into a hard failure instead of
  /// a silently cache-served (and therefore meaningless) timing.
  double submit_edit(std::size_t size) {
    std::string script;
    for (std::size_t i = 0; i < size; ++i, ++next_flip) {
      const aig::node_index target =
          gates[next_flip % gates.size()];
      const bool flip_f0 = (next_flip / gates.size()) % 2 != 0;
      const signal a = current.fanin0(target);
      const signal b = current.fanin1(target);
      script += "replace n" + std::to_string(target) + " " +
                sig_token(flip_f0 ? !a : a) + " " +
                sig_token(flip_f0 ? b : !b) + "\n";
    }
    serve::synth_delta_request dreq;
    dreq.base = base;
    stamp(dreq.base);
    dreq.base_content_hash = current_hash;
    dreq.edit_text = script;
    dreq.supersede_base = false;

    const auto start = clock_type::now();
    const serve::synth_response r = cli.submit_delta(dreq);
    const double ms = ms_since(start);
    eco::apply_edit_text(current, script);  // keep the local mirror in step
    if (!r.ok || r.content_hash != current.content_hash()) {
      std::fprintf(stderr, "delta diverged from local replay\n");
      std::exit(1);
    }
    current_hash = r.content_hash;
    if (!seen.insert(current_hash).second) {
      std::fprintf(stderr,
                   "edit sequence revisited a served circuit state — the "
                   "timing would measure a cache hit, not an ECO\n");
      std::exit(1);
    }
    return ms;
  }
};

struct eco_figures {
  double cold_ms = 0.0;
  double edit1_ms = 0.0;
  double edit8_ms = 0.0;
  double edit64_ms = 0.0;
};

eco_figures run_session(serve::client& cli, const std::string& name,
                        unsigned grain, int reps) {
  eco_session session(cli, name, grain);
  eco_figures out;
  out.cold_ms = session.submit_cold();
  session.submit_edit(1);  // warm-up: first delta pays the retained-copy path
  // Large edits first: the tightly capped single-gate figure is measured in
  // the fully warmed steady state an interactive session actually sits in.
  for (const std::size_t size : {std::size_t{64}, std::size_t{8},
                                 std::size_t{1}}) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      best = std::min(best, session.submit_edit(size));
    }
    (size == 1 ? out.edit1_ms : size == 8 ? out.edit8_ms : out.edit64_ms) =
        best;
  }
  std::printf("PERF_ECO circuit=%s grain=%u cold_ms=%.3f edit1_ms=%.3f "
              "edit8_ms=%.3f edit64_ms=%.3f\n",
              name.c_str(), grain, out.cold_ms, out.edit1_ms, out.edit8_ms,
              out.edit64_ms);
  if (g_trace) {
    // Read the last measured request's waterfall back from the daemon:
    // proves the per-request collector rode the same hot path the figures
    // above timed (reported-only, not part of the gated JSON).
    const serve::trace_reply tr =
        cli.trace({bench_trace_hi, session.last_trace_lo});
    double total_ms = 0.0;
    double stage_ms = 0.0;
    for (const auto& sp : tr.spans) {
      if (sp.name == "request_total") total_ms = sp.dur_us / 1000.0;
      if (sp.name.rfind("stage:", 0) == 0) stage_ms += sp.dur_us / 1000.0;
    }
    std::printf("PERF_ECO_TRACE circuit=%s spans=%zu stage_sum_ms=%.3f "
                "request_total_ms=%.3f\n",
                name.c_str(), tr.spans.size(), stage_ms, total_ms);
    if (tr.spans.empty()) {
      std::fprintf(stderr, "--trace produced no spans for the last edit\n");
      std::exit(1);
    }
  }
  return out;
}

void emit_json(std::ostream& os, const eco_figures& f) {
  os << "{\n"
     << "      \"cold_ms\": " << f.cold_ms << ",\n"
     << "      \"edit1_ms\": " << f.edit1_ms << ",\n"
     << "      \"edit8_ms\": " << f.edit8_ms << ",\n"
     << "      \"edit64_ms\": " << f.edit64_ms << "\n"
     << "    }";
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 16;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--trace") {
      g_trace = true;
    } else if (!arg.empty() &&
               arg.find_first_not_of("0123456789") == std::string::npos) {
      reps = std::atoi(arg.c_str());
    } else {
      std::cerr << "usage: " << argv[0]
                << " [reps>0] [--json=FILE] [--trace]\n";
      return 2;
    }
  }
  if (reps <= 0) {
    std::cerr << "usage: " << argv[0]
              << " [reps>0] [--json=FILE] [--trace]\n";
    return 2;
  }

  // The in-process daemon's info-level request.done lines would put one
  // stderr write inside every measured round trip — and make the sub-ms
  // figures depend on how fast whatever consumes stderr drains it.  Warn
  // and above still surface; the always-on span recorder stays on, which
  // is exactly what the gate is meant to price.
  log::set_level(log::level::warn);

  char tmpl[] = "/tmp/xsfq_bench_eco_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    return 1;
  }
  serve::server_options options;
  options.socket_path = std::string(dir) + "/served.sock";
  options.threads = 2;
  serve::server srv(options);
  serve::client cli(options.socket_path);

  const eco_figures c880 = run_session(cli, "c880", 64, reps);
  const eco_figures c6288 = run_session(cli, "c6288", 24, reps);
  const double speedup =
      c6288.edit1_ms > 0.0 ? c6288.cold_ms / c6288.edit1_ms : 0.0;
  std::printf("c6288 single-gate ECO: %.3f ms vs %.3f ms cold (%.1fx)\n",
              c6288.edit1_ms, c6288.cold_ms, speedup);

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n  \"eco\": {\n    \"c880\": ";
    emit_json(os, c880);
    os << ",\n    \"c6288\": ";
    emit_json(os, c6288);
    os << "\n  }\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  srv.stop();
  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
  return 0;
}
