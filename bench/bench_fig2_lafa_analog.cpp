/// Reproduces Figure 2: analog (RCSJ transient) waveforms of the Last
/// Arrival and First Arrival cells.  ASCII rendering of junction phases.
#include <cmath>
#include <cstdio>

#include "analog/cells.hpp"

using namespace xsfq::analog;

namespace {

void render_phase(const char* label, const circuit::probe_data& data,
                  std::size_t jj) {
  // One character per ~2 ps; each 2*pi slip advances the glyph.
  std::printf("  %-10s ", label);
  const std::size_t stride = 4;
  for (std::size_t i = 0; i < data.time_ps.size(); i += stride) {
    const int slips = static_cast<int>(std::floor(
        (data.jj_phase[jj][i] + 3.14159) / 6.28318));
    std::printf("%c", slips <= 0 ? '_' : (slips == 1 ? '#' : '*'));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Figure 2: LA and FA cell transient simulation (RCSJ) ==\n");
  std::printf("('_' initial phase, '#' after one 2*pi slip, '*' beyond;\n"
              "  x-axis ~%.0f ps per column)\n\n", 0.8);

  std::printf("Panel i — Last Arrival (C element): a @20ps, b @55ps\n");
  {
    auto d = make_la_cell();
    d.ckt.add_pulse(d.inputs[0], 20.0);
    d.ckt.add_pulse(d.inputs[1], 55.0);
    const auto r = d.ckt.run(100.0);
    render_phase("in a", r, d.input_jjs[0]);
    render_phase("in b", r, d.input_jjs[1]);
    render_phase("out", r, d.output_jjs[0]);
    const auto out = circuit::phase_slips(r, d.output_jjs[0]);
    std::printf("  -> output fires %zu time(s)%s\n\n", out.size(),
                out.empty() ? "" : " after the LAST arrival");
  }
  std::printf("Panel i (single input only — no output, state held)\n");
  {
    auto d = make_la_cell();
    d.ckt.add_pulse(d.inputs[0], 20.0);
    const auto r = d.ckt.run(100.0);
    render_phase("in a", r, d.input_jjs[0]);
    render_phase("out", r, d.output_jjs[0]);
    std::printf("  -> output fires %zu time(s)\n\n",
                circuit::phase_slips(r, d.output_jjs[0]).size());
  }
  std::printf("Panel ii — First Arrival (inverse C element): a @20ps\n");
  {
    auto d = make_fa_cell();
    d.ckt.add_pulse(d.inputs[0], 20.0);
    const auto r = d.ckt.run(100.0);
    render_phase("in a", r, d.input_jjs[0]);
    render_phase("out", r, d.output_jjs[0]);
    const auto out = circuit::phase_slips(r, d.output_jjs[0]);
    std::printf("  -> output fires %zu time(s) on the FIRST arrival", out.size());
    if (!out.empty()) {
      std::printf(" (delay %.1f ps)",
                  propagation_delay_ps(r, d.input_jjs[0], d.output_jjs[0]));
    }
    std::printf("\n\n");
  }
  std::printf(
      "Note: these decks demonstrate the cells' last-/first-arrival physics\n"
      "in our RCSJ simulator; cycle-accurate cell semantics (Table 1) are\n"
      "validated in the pulse-level simulator (see DESIGN.md).\n");
  return 0;
}
