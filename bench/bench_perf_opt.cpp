/// bench_perf_opt — microbenchmark of the zero-rebuild optimization pipeline.
///
///   bench_perf_opt [circuit] [reps] [--json=FILE]   (default: c6288, 5)
///
/// Measures, as min-over-reps after a warm-up run (steady state is the
/// arena-recycled regime the pipeline is designed for):
///   * the full resyn script (optimize) sequentially and with
///     --flow-jobs=4-style partitioning (inline executor — the deterministic
///     result is identical to any parallel schedule),
///   * the individual balance / rewrite / refactor passes,
///   * AIG -> xSFQ mapping through the recycled mapper engine,
/// plus one cold-process end-to-end figure (the first optimize+map before
/// any cache is warm) and the arena counters (rebuilds avoided, peak
/// network-arena bytes).  --json emits the bench_perf_opt block consumed by
/// tools/check_perf_regression.py against bench/BENCH_baseline.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "benchgen/registry.hpp"
#include "core/mapper.hpp"
#include "opt/opt_engine.hpp"
#include "opt/partition.hpp"
#include "opt/script.hpp"

using namespace xsfq;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

template <typename Fn>
double min_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = clock_type::now();
    fn();
    best = std::min(best, ms_since(start));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit = "c6288";
  int reps = 5;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.find_first_not_of("0123456789") == std::string::npos &&
               !arg.empty()) {
      reps = std::atoi(arg.c_str());
    } else {
      circuit = arg;
    }
  }
  if (reps <= 0) {
    std::cerr << "usage: " << argv[0] << " [circuit] [reps>0] [--json=FILE]\n";
    return 2;
  }

  const aig g = benchgen::make_benchmark(circuit);

  // Cold figure first: the very first optimize+map of this process, before
  // any per-thread cache or arena has warmed (what a one-shot xsfq_synth
  // invocation pays).
  double cold_ms = 0.0;
  {
    const auto start = clock_type::now();
    const aig opt = optimize(g);
    const mapping_result mapped = map_to_xsfq(opt);
    cold_ms = ms_since(start);
    std::printf("%s: cold optimize+map %.3f ms (%zu -> %zu gates, %zu JJ)\n",
                circuit.c_str(), cold_ms, g.num_gates(), opt.num_gates(),
                mapped.stats.jj);
  }

  const double opt_ms = min_ms(reps, [&] { optimize(g); });

  optimize_params jobs4;
  jobs4.flow_jobs = 4;
  partition_info pinfo;
  const double opt_jobs4_ms =
      min_ms(reps, [&] { optimize_partitioned(g, jobs4, nullptr, &pinfo); });

  opt_engine& engine = opt_engine::thread_local_engine();
  const double balance_ms = min_ms(reps, [&] { engine.balance(g); });
  const double rewrite_ms = min_ms(reps, [&] { engine.rewrite(g); });
  const double refactor_ms = min_ms(reps, [&] { engine.refactor(g); });

  const aig opt = optimize(g);
  xsfq_mapper mapper;
  mapping_result mapped;
  mapper.map_into(g, {}, mapped);  // warm the recycled buffers
  const double map_ms = min_ms(reps, [&] { mapper.map_into(opt, {}, mapped); });

  optimize_stats st;
  optimize(g, {}, &st);

  std::printf("optimize: %.3f ms | partitioned x%u: %.3f ms (%zu boundary)\n",
              opt_ms, pinfo.partitions, opt_jobs4_ms, pinfo.boundary_signals);
  std::printf("passes:   b %.3f ms | rw %.3f ms | rf %.3f ms\n", balance_ms,
              rewrite_ms, refactor_ms);
  std::printf("map:      %.3f ms (recycled engine)\n", map_ms);
  std::printf(
      "arena:    %llu rebuilds avoided / %llu passes, %.1f KB network arena\n",
      static_cast<unsigned long long>(st.work.rebuilds_avoided),
      static_cast<unsigned long long>(st.work.passes),
      static_cast<double>(st.work.net_arena_bytes) / 1024.0);
  std::printf("PERF_OPT circuit=%s cold_ms=%.3f opt_ms=%.3f opt4_ms=%.3f "
              "map_ms=%.3f\n",
              circuit.c_str(), cold_ms, opt_ms, opt_jobs4_ms, map_ms);

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"circuit\": \"" << circuit << "\",\n"
       << "  \"opt\": {\n"
       << "    \"cold_optimize_map_ms\": " << cold_ms << ",\n"
       << "    \"optimize_ms\": " << opt_ms << ",\n"
       << "    \"optimize_jobs4_ms\": " << opt_jobs4_ms << ",\n"
       << "    \"balance_pass_ms\": " << balance_ms << ",\n"
       << "    \"rewrite_pass_ms\": " << rewrite_ms << ",\n"
       << "    \"refactor_pass_ms\": " << refactor_ms << ",\n"
       << "    \"map_ms\": " << map_ms << ",\n"
       << "    \"rebuilds_avoided\": " << st.work.rebuilds_avoided << ",\n"
       << "    \"net_arena_bytes\": " << st.work.net_arena_bytes << "\n"
       << "  }\n"
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
