/// Reproduces Table 1: alternating input sequences of the LA (C element)
/// and FA (inverse C element) cells, exercised on the pulse simulator.
#include <iostream>

#include "bench_common.hpp"
#include "pulsesim/pulse_sim.hpp"

using namespace xsfq;

int main() {
  std::cout << "== Table 1: LA/FA alternating input sequences ==\n"
            << "(excite phase carries (a,b); relax carries the complement;\n"
            << " outputs decoded from the pulse-level cell state machines)\n\n";

  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  g.create_po(!g.create_and(!a, !b), "FAab");  // OR = FA cell
  g.create_po(g.create_and(a, b), "LAab");     // AND = LA cell
  mapping_params p;
  p.polarity = polarity_mode::positive_outputs;
  const auto m = map_to_xsfq(g, p);

  table_printer t({"state", "a", "b", "FAab", "LAab", "a'", "b'", "FA'",
                   "LA'", "end state"});
  pulse_simulator sim(m.netlist);
  for (int pattern = 0; pattern < 4; ++pattern) {
    const bool va = (pattern >> 1) & 1;
    const bool vb = pattern & 1;
    sim.reset();
    const auto r = sim.run_cycle({va, vb});
    // Excite row carries the values; the relax row their complements, and
    // the consistency flag confirms the Table 1 return-to-Init behaviour.
    t.add_row({"Init", std::to_string(va), std::to_string(vb),
               std::to_string(va || vb), std::to_string(va && vb),
               std::to_string(!va), std::to_string(!vb),
               std::to_string(!(va || vb)), std::to_string(!(va && vb)),
               r.alternating_ok && r.outputs_consistent ? "Init" : "VIOLATION"});
    if (r.outputs[0] != (va || vb) || r.outputs[1] != (va && vb)) {
      std::cout << "ERROR: decoded outputs disagree with Table 1\n";
      return 1;
    }
  }
  t.print(std::cout);
  std::cout << "\nAll four logical cycles reinitialize every cell (paper: the\n"
            << "alternation guarantees LA/FA return to Init without a clock).\n";
  return 0;
}
