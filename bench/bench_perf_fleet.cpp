/// bench_perf_fleet — fleet routing overhead and failover latency through
/// the sharded client (serve/fleet.hpp).
///
///   bench_perf_fleet [reps] [--json=FILE]      (default: 8 reps)
///
/// Spins 1- and 3-shard in-process daemon fleets (Unix sockets, no disk
/// cache) and drives the ISCAS85 warm corpus through a fleet_client,
/// answering the three questions an operator asks before sharding:
///
///   route_overhead_ms — warm per-request cost of the consistent-hash
///       routing layer itself: min-over-reps of a warm c432 round trip
///       through a 1-endpoint fleet vs a plain client on the same daemon.
///   fleet3_corpus_ms  — min-over-reps wall time for the 4-circuit warm
///       corpus through 3 shards (every request routes by content hash,
///       so circuits pin to their owners and each shard's memory cache
///       serves its own slice).
///   failover_ms       — client-observed round trip of the first request
///       after its primary shard dies (connect failure + health demotion
///       + replica retry), measured against a freshly killed owner.
///
/// --json emits a bench_perf_fleet block for tools/check_perf_regression.py;
/// the keys are informational until a baseline entry pins them (the checker
/// skips names absent from bench/BENCH_baseline.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/fleet.hpp"
#include "serve/server.hpp"
#include "serve/synth_service.hpp"
#include "util/log.hpp"

using namespace xsfq;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

const std::vector<std::string> corpus{"c432", "c880", "c1908", "c6288"};

/// An in-process fleet of `n` daemons on Unix sockets under `dir`.
struct fleet_harness {
  std::string dir;
  std::vector<std::unique_ptr<serve::server>> servers;
  std::vector<serve::endpoint> endpoints;

  fleet_harness(const std::string& base_dir, std::size_t n) : dir(base_dir) {
    for (std::size_t i = 0; i < n; ++i) {
      serve::server_options options;
      options.socket_path = dir + "/shard" + std::to_string(i) + ".sock";
      options.threads = 2;
      servers.push_back(std::make_unique<serve::server>(options));
      serve::endpoint ep;
      ep.socket_path = options.socket_path;
      endpoints.push_back(ep);
    }
  }
  void stop_all() {
    for (auto& s : servers) s->stop();
  }
};

serve::fleet_options bench_fleet_options() {
  serve::fleet_options options;
  options.replicas = 2;
  options.policy.max_retries = 4;
  options.policy.initial_backoff_ms = 1;
  options.policy.max_backoff_ms = 20;
  options.down_after = 1;  // first connect failure demotes — the common
                           // production setting for fast failover
  return options;
}

/// min-over-reps of one warm submit round trip.
template <typename Submit>
double min_round_trip(Submit&& submit, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = clock_type::now();
    submit();
    best = std::min(best, ms_since(start));
  }
  return best;
}

struct fleet_figures {
  double direct_warm_ms = 0.0;
  double fleet1_warm_ms = 0.0;
  double route_overhead_ms = 0.0;
  double fleet3_corpus_ms = 0.0;
  double failover_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  int reps = 8;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (!arg.empty() &&
               arg.find_first_not_of("0123456789") == std::string::npos) {
      reps = std::atoi(arg.c_str());
    } else {
      std::cerr << "usage: " << argv[0] << " [reps>0] [--json=FILE]\n";
      return 2;
    }
  }
  if (reps <= 0) {
    std::cerr << "usage: " << argv[0] << " [reps>0] [--json=FILE]\n";
    return 2;
  }

  // Same rationale as bench_perf_eco: keep the daemons' info-level request
  // logging out of the measured round trips.
  log::set_level(log::level::warn);

  char tmpl[] = "/tmp/xsfq_bench_fleet_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    return 1;
  }
  fleet_figures out;

  {
    // --- Routing overhead: plain client vs 1-endpoint fleet, same daemon.
    fleet_harness solo(std::string(dir) + "", 1);
    serve::client direct(solo.endpoints[0].socket_path);
    const serve::synth_request req = serve::make_request_for_spec("c432");
    if (!direct.submit(req).ok) {  // warm the shard's memory cache
      std::cerr << "cold submit failed\n";
      return 1;
    }
    out.direct_warm_ms =
        min_round_trip([&] { (void)direct.submit(req); }, reps);

    serve::fleet_client fleet(solo.endpoints, bench_fleet_options());
    (void)fleet.submit(req);  // first fleet send pays connect
    out.fleet1_warm_ms =
        min_round_trip([&] { (void)fleet.submit(req); }, reps);
    out.route_overhead_ms =
        std::max(0.0, out.fleet1_warm_ms - out.direct_warm_ms);
    solo.stop_all();
  }

  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
  std::filesystem::create_directory(dir, ignored);

  {
    // --- 3-shard corpus throughput and kill-one failover latency.
    fleet_harness trio(std::string(dir) + "", 3);
    auto fleet = std::make_unique<serve::fleet_client>(trio.endpoints,
                                                       bench_fleet_options());
    std::vector<serve::synth_request> reqs;
    for (const auto& name : corpus) {
      reqs.push_back(serve::make_request_for_spec(name));
      if (!fleet->submit(reqs.back()).ok) {  // warm every owner
        std::cerr << "fleet warm-up failed for " << name << "\n";
        return 1;
      }
    }
    out.fleet3_corpus_ms = min_round_trip(
        [&] {
          for (const auto& r : reqs) (void)fleet->submit(r);
        },
        reps);

    // Kill c432's primary owner, then time the very first resubmit: the
    // figure includes the dead connect, the health demotion, and the
    // replica retry.  One-shot by construction — later submits route
    // around the corpse — so it is a single sample, not min-over-reps.
    const auto owners =
        fleet->owners_for(serve::fleet_client::routing_key(reqs[0]));
    std::size_t victim = trio.servers.size();
    for (std::size_t i = 0; i < trio.servers.size(); ++i) {
      if (serve::fleet_client::endpoint_id(trio.endpoints[i]) ==
          owners.front()) {
        victim = i;
      }
    }
    if (victim == trio.servers.size()) {
      std::cerr << "victim endpoint not found\n";
      return 1;
    }
    trio.servers[victim]->stop();
    const auto start = clock_type::now();
    const serve::synth_response r = fleet->submit(reqs[0]);
    out.failover_ms = ms_since(start);
    if (!r.ok || fleet->counters().failovers == 0) {
      std::cerr << "failover submit did not fail over\n";
      return 1;
    }
    fleet.reset();
    trio.stop_all();
  }

  std::printf("PERF_FLEET direct_warm_ms=%.3f fleet1_warm_ms=%.3f "
              "route_overhead_ms=%.3f fleet3_corpus_ms=%.3f "
              "failover_ms=%.3f\n",
              out.direct_warm_ms, out.fleet1_warm_ms, out.route_overhead_ms,
              out.fleet3_corpus_ms, out.failover_ms);

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n  \"fleet\": {\n    \"warm\": {\n"
       << "      \"direct_warm_ms\": " << out.direct_warm_ms << ",\n"
       << "      \"fleet1_warm_ms\": " << out.fleet1_warm_ms << ",\n"
       << "      \"route_overhead_ms\": " << out.route_overhead_ms << ",\n"
       << "      \"fleet3_corpus_ms\": " << out.fleet3_corpus_ms << ",\n"
       << "      \"failover_ms\": " << out.failover_ms << "\n"
       << "    }\n  }\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  std::filesystem::remove_all(dir, ignored);
  return 0;
}
