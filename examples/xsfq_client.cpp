/// xsfq_client — CLI front end of the synthesis service.
///
///   xsfq_client [--socket=PATH] <circuit|file.bench|file.blif> [options]
///   xsfq_client [--socket=PATH] --status | --cache-stats | --shutdown
///
/// Synthesis options mirror xsfq_synth exactly (--polarity, --pipeline,
/// --registers, --verilog, --dot, --liberty, --validate, --timing,
/// --no-timing, --progress), and the deterministic output is byte-identical
/// to a local xsfq_synth run of the same circuit+options — both front ends
/// render the same serve::synth_response.  The timing footer reports the
/// daemon's wall clock for this request (suppress with --no-timing when
/// diffing).  --progress streams the daemon's per-stage events to stderr as
/// they happen, so stdout stays diffable.
#include <iostream>
#include <string>

#include "serve/client.hpp"
#include "serve/synth_service.hpp"

using namespace xsfq;

namespace {

void print_cache_stats(const serve::cache_stats_reply& reply) {
  const auto& s = reply.stats;
  std::cout << "full_hits=" << s.full_hits << " full_misses=" << s.full_misses
            << " opt_hits=" << s.opt_hits << " opt_misses=" << s.opt_misses
            << " disk_hits=" << s.disk_hits
            << " disk_misses=" << s.disk_misses
            << " disk_writes=" << s.disk_writes << " disk_dir="
            << (reply.disk_directory.empty() ? "(disabled)"
                                             : reply.disk_directory)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = serve::default_socket_path;
  std::string spec;
  serve::synth_cli_options synth;  // shared parser with xsfq_synth
  enum class action { synth, status, cache_stats, shutdown };
  action act = action::synth;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string error;
    switch (serve::parse_synth_option(arg, synth, error)) {
      case serve::cli_parse::consumed:
        continue;
      case serve::cli_parse::invalid:
        std::cerr << error << "\n";
        return 2;
      case serve::cli_parse::not_synth_option:
        break;
    }
    if (auto v = serve::cli_value(arg, "--socket"); !v.empty()) {
      socket_path = v;
    } else if (arg == "--status") {
      act = action::status;
    } else if (arg == "--cache-stats") {
      act = action::cache_stats;
    } else if (arg == "--shutdown") {
      act = action::shutdown;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    } else if (spec.empty()) {
      spec = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return 2;
    }
  }
  if (act == action::synth && spec.empty()) {
    std::cerr << "usage: xsfq_client [--socket=PATH] "
                 "<circuit|file.bench|file.blif> [options]\n"
                 "       xsfq_client [--socket=PATH] --status | "
                 "--cache-stats | --shutdown\n";
    return 2;
  }

  try {
    serve::client cli(socket_path);
    switch (act) {
      case action::status: {
        const auto s = cli.status();
        std::cout << "jobs_submitted=" << s.jobs_submitted
                  << " jobs_completed=" << s.jobs_completed
                  << " jobs_failed=" << s.jobs_failed
                  << " active_connections=" << s.active_connections
                  << " worker_threads=" << s.worker_threads
                  << " steals=" << s.steals << " uptime_s=" << s.uptime_s
                  << "\n";
        return 0;
      }
      case action::cache_stats:
        print_cache_stats(cli.cache_stats());
        return 0;
      case action::shutdown:
        cli.shutdown_server();
        std::cout << "daemon acknowledged shutdown\n";
        return 0;
      case action::synth:
        break;
    }

    serve::synth_request req = serve::make_request_for_spec(spec);
    serve::apply_cli_options(synth, req);
    req.stream_progress = synth.progress;

    const serve::synth_response resp =
        cli.submit(req, serve::print_progress_event);
    if (synth.progress && resp.served_from_cache) {
      std::cerr << "(served from daemon cache)\n";
    }
    // The rendering IS xsfq_synth's: one shared printer, byte for byte.
    return serve::render_synth_response(resp, synth);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
