/// xsfq_client — CLI front end of the synthesis service.
///
///   xsfq_client [--socket=PATH | --tcp=HOST:PORT [--auth-token=SECRET]]
///               <circuit|file.bench|file.blif> [options]
///   xsfq_client [connection flags] --status | --cache-stats | --stats |
///               --shutdown
///
/// Connects over the daemon's Unix socket (default) or TCP (--tcp); a
/// daemon with an auth token requires --auth-token (or the XSFQ_AUTH_TOKEN
/// environment variable) on TCP connections.
///
/// Synthesis options mirror xsfq_synth exactly (--polarity, --pipeline,
/// --registers, --verilog, --dot, --liberty, --validate, --timing,
/// --no-timing, --progress), and the deterministic output is byte-identical
/// to a local xsfq_synth run of the same circuit+options — both front ends
/// render the same serve::synth_response.  The timing footer reports the
/// daemon's wall clock for this request (suppress with --no-timing when
/// diffing).  --progress streams the daemon's per-stage events to stderr as
/// they happen, so stdout stays diffable.
///
/// Admission knobs: --priority=0..255 orders the wait for an execution slot
/// (higher first); --deadline-ms=X fails the request with a typed
/// `deadline_expired` error when no slot frees in time.  --stats dumps the
/// daemon's full metrics scrape as Prometheus-style plaintext.
///
/// Incremental resynthesis (v4): --edit=FILE submits the circuit as an edit
/// script applied to the previously synthesized base — the client loads the
/// base circuit locally to compute its content hash, and the daemon replays
/// the edit onto its retained copy of the base AIG, so only the touched
/// region is re-optimized.  Output stays byte-identical to a from-scratch
/// run of the edited circuit.  --edit-full forces the daemon to run the
/// edited circuit cold (the byte-identity comparator for CI);
/// --no-supersede keeps the base circuit's cache entries alive alongside
/// the edited result.  The new content hash is printed to stderr as
/// `content_hash=<hex>` for chaining further edits.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>

#include "serve/client.hpp"
#include "serve/synth_service.hpp"

using namespace xsfq;

namespace {

void print_cache_stats(const serve::cache_stats_reply& reply) {
  const auto& s = reply.stats;
  std::cout << "full_hits=" << s.full_hits << " full_misses=" << s.full_misses
            << " opt_hits=" << s.opt_hits << " opt_misses=" << s.opt_misses
            << " disk_hits=" << s.disk_hits
            << " disk_misses=" << s.disk_misses
            << " disk_writes=" << s.disk_writes << " disk_dir="
            << (reply.disk_directory.empty() ? "(disabled)"
                                             : reply.disk_directory)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = serve::default_socket_path;
  std::string tcp_address;  // "host:port"; empty = Unix socket
  std::string auth_token;
  if (const char* env = std::getenv("XSFQ_AUTH_TOKEN"); env != nullptr) {
    auth_token = env;
  }
  std::string spec;
  serve::synth_cli_options synth;  // shared parser with xsfq_synth
  unsigned priority = 100;
  double deadline_ms = 0.0;
  std::string edit_path;      // --edit=FILE → submit_delta
  bool edit_full = false;     // --edit-full: force a cold full resynthesis
  bool supersede = true;      // --no-supersede clears it
  enum class action { synth, status, cache_stats, server_stats, shutdown };
  action act = action::synth;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string error;
    switch (serve::parse_synth_option(arg, synth, error)) {
      case serve::cli_parse::consumed:
        continue;
      case serve::cli_parse::invalid:
        std::cerr << error << "\n";
        return 2;
      case serve::cli_parse::not_synth_option:
        break;
    }
    if (auto v = serve::cli_value(arg, "--socket"); !v.empty()) {
      socket_path = v;
    } else if (auto vt = serve::cli_value(arg, "--tcp"); !vt.empty()) {
      tcp_address = vt;
    } else if (auto va = serve::cli_value(arg, "--auth-token"); !va.empty()) {
      auth_token = va;
    } else if (auto vp = serve::cli_value(arg, "--priority"); !vp.empty()) {
      char* end = nullptr;
      const unsigned long p = std::strtoul(vp.c_str(), &end, 10);
      if (end == vp.c_str() || *end != '\0' || p > 255) {
        std::cerr << "--priority expects 0..255, got: " << vp << "\n";
        return 2;
      }
      priority = static_cast<unsigned>(p);
    } else if (auto vd = serve::cli_value(arg, "--deadline-ms");
               !vd.empty()) {
      char* end = nullptr;
      const double d = std::strtod(vd.c_str(), &end);
      if (end == vd.c_str() || *end != '\0' || d < 0.0) {
        std::cerr << "--deadline-ms expects a non-negative number, got: "
                  << vd << "\n";
        return 2;
      }
      deadline_ms = d;
    } else if (auto ve = serve::cli_value(arg, "--edit"); !ve.empty()) {
      edit_path = ve;
    } else if (arg == "--edit-full") {
      edit_full = true;
    } else if (arg == "--no-supersede") {
      supersede = false;
    } else if (arg == "--status") {
      act = action::status;
    } else if (arg == "--cache-stats") {
      act = action::cache_stats;
    } else if (arg == "--stats") {
      act = action::server_stats;
    } else if (arg == "--shutdown") {
      act = action::shutdown;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    } else if (spec.empty()) {
      spec = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return 2;
    }
  }
  if (act == action::synth && spec.empty()) {
    std::cerr << "usage: xsfq_client [--socket=PATH | --tcp=HOST:PORT "
                 "[--auth-token=SECRET]] <circuit|file.bench|file.blif> "
                 "[options] [--edit=FILE [--edit-full] [--no-supersede]]\n"
                 "       xsfq_client [connection flags] --status | "
                 "--cache-stats | --stats | --shutdown\n";
    return 2;
  }
  if (edit_path.empty() && (edit_full || !supersede)) {
    std::cerr << "--edit-full and --no-supersede require --edit=FILE\n";
    return 2;
  }

  try {
    auto make_client = [&]() {
      if (tcp_address.empty()) {
        return std::make_unique<serve::client>(socket_path);
      }
      const auto colon = tcp_address.find_last_of(':');
      if (colon == std::string::npos || colon == tcp_address.size() - 1) {
        throw std::runtime_error("--tcp expects HOST:PORT, got: " +
                                 tcp_address);
      }
      const std::string host = tcp_address.substr(0, colon);
      const int port = std::atoi(tcp_address.c_str() + colon + 1);
      if (port <= 0 || port > 65535) {
        throw std::runtime_error("--tcp has a bad port: " + tcp_address);
      }
      auto cli = std::make_unique<serve::client>(
          host, static_cast<std::uint16_t>(port));
      if (!auth_token.empty()) cli->authenticate(auth_token);
      return cli;
    };
    auto cli = make_client();
    switch (act) {
      case action::status: {
        const auto s = cli->status();
        std::cout << "jobs_submitted=" << s.jobs_submitted
                  << " jobs_completed=" << s.jobs_completed
                  << " jobs_failed=" << s.jobs_failed
                  << " active_connections=" << s.active_connections
                  << " worker_threads=" << s.worker_threads
                  << " steals=" << s.steals << " uptime_s=" << s.uptime_s
                  << "\n";
        return 0;
      }
      case action::cache_stats:
        print_cache_stats(cli->cache_stats());
        return 0;
      case action::server_stats:
        std::cout << serve::format_server_stats_text(cli->server_stats());
        return 0;
      case action::shutdown:
        cli->shutdown_server();
        std::cout << "daemon acknowledged shutdown\n";
        return 0;
      case action::synth:
        break;
    }

    serve::synth_request req = serve::make_request_for_spec(spec);
    serve::apply_cli_options(synth, req);
    req.stream_progress = synth.progress;
    req.priority = static_cast<std::uint8_t>(priority);
    req.deadline_ms = deadline_ms;

    serve::synth_response resp;
    if (edit_path.empty()) {
      resp = cli->submit(req, serve::print_progress_event);
    } else {
      std::ifstream in(edit_path);
      if (!in) {
        std::cerr << "cannot read edit script: " << edit_path << "\n";
        return 2;
      }
      serve::synth_delta_request dreq;
      dreq.base = req;
      // Hash the base circuit locally: the daemon verifies its retained (or
      // rebuilt) base network against this before replaying the edit.
      dreq.base_content_hash = serve::load_request_circuit(req).content_hash();
      dreq.edit_text.assign(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>());
      dreq.supersede_base = supersede;
      dreq.force_full = edit_full;
      resp = cli->submit_delta(dreq, serve::print_progress_event);
      if (resp.ok) {
        std::fprintf(stderr, "content_hash=%016llx\n",
                     static_cast<unsigned long long>(resp.content_hash));
      }
    }
    if (synth.progress && resp.served_from_cache) {
      std::cerr << "(served from daemon cache)\n";
    }
    // The rendering IS xsfq_synth's: one shared printer, byte for byte.
    return serve::render_synth_response(resp, synth);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
