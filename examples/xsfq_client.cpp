/// xsfq_client — CLI front end of the synthesis service.
///
///   xsfq_client [--socket=PATH | --tcp=HOST:PORT [--auth-token=SECRET]]
///               <circuit|file.bench|file.blif> [options]
///   xsfq_client [connection flags] --status | --cache-stats | --stats |
///               --shutdown
///   xsfq_client --fleet=EP1,EP2,... [--replicas=R] <spec>... |
///               --route <spec>... | --stats
///
/// Connects over the daemon's Unix socket (default) or TCP (--tcp); a
/// daemon with an auth token requires --auth-token (or the XSFQ_AUTH_TOKEN
/// environment variable) on TCP connections.
///
/// Synthesis options mirror xsfq_synth exactly (--polarity, --pipeline,
/// --registers, --verilog, --dot, --liberty, --validate, --timing,
/// --no-timing, --progress), and the deterministic output is byte-identical
/// to a local xsfq_synth run of the same circuit+options — both front ends
/// render the same serve::synth_response.  The timing footer reports the
/// daemon's wall clock for this request (suppress with --no-timing when
/// diffing).  --progress streams the daemon's per-stage events to stderr as
/// they happen, so stdout stays diffable.
///
/// Admission knobs: --priority=0..255 orders the wait for an execution slot
/// (higher first); --deadline-ms=X fails the request with a typed
/// `deadline_expired` error when no slot frees in time.  --stats dumps the
/// daemon's full metrics scrape as Prometheus-style plaintext.
///
/// Incremental resynthesis (v4): --edit=FILE submits the circuit as an edit
/// script applied to the previously synthesized base — the client loads the
/// base circuit locally to compute its content hash, and the daemon replays
/// the edit onto its retained copy of the base AIG, so only the touched
/// region is re-optimized.  Output stays byte-identical to a from-scratch
/// run of the edited circuit.  --edit-full forces the daemon to run the
/// edited circuit cold (the byte-identity comparator for CI);
/// --no-supersede keeps the base circuit's cache entries alive alongside
/// the edited result.  The new content hash is printed to stderr as
/// `content_hash=<hex>` for chaining further edits.
///
/// Resilience (v5): --retries=N wraps the request in
/// serve::resilient_client — reconnect + capped exponential backoff with
/// jitter, honoring the daemon's retry_after_ms hints — so a daemon
/// restart, a reset connection, or an overload rejection is survived by
/// resubmitting (results are deterministic, so replays are idempotent).
/// --timeout-ms=X bounds each attempt's wait for a response;
/// --backoff-ms=X sets the first backoff (doubling, capped at 2000 ms).
/// With retries the attempt counters are printed to stderr as
/// `client_retries=N client_reconnects=N`.  Default (--retries=0) keeps
/// the classic fail-fast single-connection behavior.
///
/// Tracing (v6): --trace stamps the request with a random 16-byte trace id,
/// fetches the daemon's collected span tree after the result arrives, and
/// prints a per-stage waterfall to stderr — queue wait, runner queue, cache
/// probes, each flow stage, and the end-to-end request_total — so "where
/// did my milliseconds go?" is answerable per request.  stdout stays
/// byte-identical to xsfq_synth.  --log-level=LEVEL gates the structured
/// retry/reconnect log lines (default info).
///
/// Fleet mode (v7): --fleet=EP1,EP2,... replaces the single connection with
/// serve::fleet_client — consistent-hash routing by content hash across the
/// listed daemons, health-checked failover, hedged sends.  An endpoint
/// containing '/' is a Unix socket path, anything else is HOST:PORT
/// (--auth-token applies to every TCP endpoint).  --replicas=R sets the
/// placement fan-out (default 2).  Several circuit specs may be given and
/// run in order (a corpus); after the run the client-side fleet counters go
/// to stderr (`fleet_failovers_total=N fleet_hedged_total=N ...`) for
/// chaos-drill assertions.  --fleet --stats prints the merged scrape (all
/// reachable daemons summed, plus per-endpoint health); --route prints each
/// spec's owner endpoints in preference order (first column repeats the
/// spec, second is the primary) without contacting any daemon — CI uses it
/// to pick its kill victim.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/fleet.hpp"
#include "serve/resilient_client.hpp"
#include "serve/synth_service.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

using namespace xsfq;

namespace {

void print_cache_stats(const serve::cache_stats_reply& reply) {
  const auto& s = reply.stats;
  std::cout << "full_hits=" << s.full_hits << " full_misses=" << s.full_misses
            << " opt_hits=" << s.opt_hits << " opt_misses=" << s.opt_misses
            << " disk_hits=" << s.disk_hits
            << " disk_misses=" << s.disk_misses
            << " disk_writes=" << s.disk_writes
            << " disk_quarantined=" << s.disk_quarantined << " disk_dir="
            << (reply.disk_directory.empty() ? "(disabled)"
                                             : reply.disk_directory)
            << "\n";
}

/// The --trace waterfall: one line per span, time-offset and duration in
/// ms, with a bar scaled against the request_total span.  Goes to stderr so
/// stdout stays diffable against xsfq_synth.
void print_trace_waterfall(const xsfq::trace::trace_id id,
                           const serve::trace_reply& reply) {
  std::fprintf(stderr, "trace %s:\n", xsfq::trace::to_hex(id).c_str());
  if (reply.spans.empty()) {
    std::fprintf(stderr, "  (no spans collected — daemon predates v6, or "
                         "the trace was evicted)\n");
    return;
  }
  std::uint64_t t0 = reply.spans.front().start_us;
  std::uint64_t total_us = 0;
  for (const auto& s : reply.spans) {
    t0 = std::min(t0, s.start_us);
    if (s.name == "request_total") total_us = s.dur_us;
  }
  if (total_us == 0) {
    for (const auto& s : reply.spans) {
      total_us = std::max(total_us, s.start_us + s.dur_us - t0);
    }
  }
  constexpr int bar_width = 32;
  double stage_sum_ms = 0.0;
  for (const auto& s : reply.spans) {
    if (s.name.rfind("stage:", 0) == 0) {
      stage_sum_ms += static_cast<double>(s.dur_us) / 1000.0;
    }
    // Bar: offset spaces then '#'s, both scaled to request_total.
    char bar[bar_width + 1];
    int lead = 0, fill = 0;
    if (total_us > 0) {
      lead = static_cast<int>((s.start_us - t0) * bar_width / total_us);
      fill = static_cast<int>(s.dur_us * bar_width / total_us);
    }
    // Clamp so every span keeps one visible tick — the send span starts
    // after request_total closes, which would otherwise scale off the bar.
    lead = std::min(lead, bar_width - 1);
    fill = std::min(std::max(fill, 1), bar_width - lead);
    std::memset(bar, ' ', bar_width);
    std::memset(bar + lead, '#', static_cast<std::size_t>(fill));
    bar[bar_width] = '\0';
    std::fprintf(stderr, "  %-24s %10.3f ms  @%10.3f ms  [tid %u] |%s|\n",
                 s.name.c_str(), static_cast<double>(s.dur_us) / 1000.0,
                 static_cast<double>(s.start_us - t0) / 1000.0, s.tid, bar);
  }
  std::fprintf(stderr,
               "trace_summary spans=%zu stage_sum_ms=%.3f "
               "request_total_ms=%.3f\n",
               reply.spans.size(), stage_sum_ms,
               static_cast<double>(total_us) / 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = serve::default_socket_path;
  std::string tcp_address;  // "host:port"; empty = Unix socket
  std::string auth_token;
  if (const char* env = std::getenv("XSFQ_AUTH_TOKEN"); env != nullptr) {
    auth_token = env;
  }
  std::vector<std::string> specs;  // >1 only in fleet mode (a corpus)
  serve::synth_cli_options synth;  // shared parser with xsfq_synth
  unsigned priority = 100;
  double deadline_ms = 0.0;
  std::string edit_path;      // --edit=FILE → submit_delta
  bool edit_full = false;     // --edit-full: force a cold full resynthesis
  bool supersede = true;      // --no-supersede clears it
  unsigned retries = 0;       // --retries=N → resilient_client path
  int timeout_ms = 0;         // --timeout-ms: per-attempt response deadline
  unsigned backoff_ms = 50;   // --backoff-ms: first retry backoff
  bool want_trace = false;    // --trace: stamp an id, print the waterfall
  std::string fleet_spec;     // --fleet=EP1,EP2,... → fleet_client path
  std::size_t fleet_replicas = 2;  // --replicas: placement fan-out
  enum class action { synth, status, cache_stats, server_stats, shutdown,
                      route };
  action act = action::synth;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string error;
    switch (serve::parse_synth_option(arg, synth, error)) {
      case serve::cli_parse::consumed:
        continue;
      case serve::cli_parse::invalid:
        std::cerr << error << "\n";
        return 2;
      case serve::cli_parse::not_synth_option:
        break;
    }
    if (auto v = serve::cli_value(arg, "--socket"); !v.empty()) {
      socket_path = v;
    } else if (auto vt = serve::cli_value(arg, "--tcp"); !vt.empty()) {
      tcp_address = vt;
    } else if (auto va = serve::cli_value(arg, "--auth-token"); !va.empty()) {
      auth_token = va;
    } else if (auto vp = serve::cli_value(arg, "--priority"); !vp.empty()) {
      char* end = nullptr;
      const unsigned long p = std::strtoul(vp.c_str(), &end, 10);
      if (end == vp.c_str() || *end != '\0' || p > 255) {
        std::cerr << "--priority expects 0..255, got: " << vp << "\n";
        return 2;
      }
      priority = static_cast<unsigned>(p);
    } else if (auto vd = serve::cli_value(arg, "--deadline-ms");
               !vd.empty()) {
      char* end = nullptr;
      const double d = std::strtod(vd.c_str(), &end);
      if (end == vd.c_str() || *end != '\0' || d < 0.0) {
        std::cerr << "--deadline-ms expects a non-negative number, got: "
                  << vd << "\n";
        return 2;
      }
      deadline_ms = d;
    } else if (auto vr = serve::cli_value(arg, "--retries"); !vr.empty()) {
      char* end = nullptr;
      const unsigned long r = std::strtoul(vr.c_str(), &end, 10);
      if (end == vr.c_str() || *end != '\0' || r > 100) {
        std::cerr << "--retries expects 0..100, got: " << vr << "\n";
        return 2;
      }
      retries = static_cast<unsigned>(r);
    } else if (auto vto = serve::cli_value(arg, "--timeout-ms");
               !vto.empty()) {
      char* end = nullptr;
      const long t = std::strtol(vto.c_str(), &end, 10);
      if (end == vto.c_str() || *end != '\0' || t < 0 || t > 86400000) {
        std::cerr << "--timeout-ms expects 0..86400000, got: " << vto << "\n";
        return 2;
      }
      timeout_ms = static_cast<int>(t);
    } else if (auto vb = serve::cli_value(arg, "--backoff-ms"); !vb.empty()) {
      char* end = nullptr;
      const unsigned long b = std::strtoul(vb.c_str(), &end, 10);
      if (end == vb.c_str() || *end != '\0' || b == 0 || b > 60000) {
        std::cerr << "--backoff-ms expects 1..60000, got: " << vb << "\n";
        return 2;
      }
      backoff_ms = static_cast<unsigned>(b);
    } else if (auto ve = serve::cli_value(arg, "--edit"); !ve.empty()) {
      edit_path = ve;
    } else if (auto vfl = serve::cli_value(arg, "--fleet"); !vfl.empty()) {
      fleet_spec = vfl;
    } else if (auto vre = serve::cli_value(arg, "--replicas"); !vre.empty()) {
      char* end = nullptr;
      const unsigned long r = std::strtoul(vre.c_str(), &end, 10);
      if (end == vre.c_str() || *end != '\0' || r == 0 || r > 16) {
        std::cerr << "--replicas expects 1..16, got: " << vre << "\n";
        return 2;
      }
      fleet_replicas = static_cast<std::size_t>(r);
    } else if (arg == "--route") {
      act = action::route;
    } else if (arg == "--trace") {
      want_trace = true;
    } else if (auto vll = serve::cli_value(arg, "--log-level");
               !vll.empty()) {
      log::level lvl;
      if (!log::parse_level(vll, lvl)) {
        std::cerr << "--log-level expects trace|debug|info|warn|error|off, "
                     "got: " << vll << "\n";
        return 2;
      }
      log::set_level(lvl);
    } else if (arg == "--edit-full") {
      edit_full = true;
    } else if (arg == "--no-supersede") {
      supersede = false;
    } else if (arg == "--status") {
      act = action::status;
    } else if (arg == "--cache-stats") {
      act = action::cache_stats;
    } else if (arg == "--stats") {
      act = action::server_stats;
    } else if (arg == "--shutdown") {
      act = action::shutdown;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    } else {
      specs.push_back(arg);
    }
  }
  const bool fleet_mode = !fleet_spec.empty();
  if ((act == action::synth || act == action::route) && specs.empty()) {
    std::cerr << "usage: xsfq_client [--socket=PATH | --tcp=HOST:PORT "
                 "[--auth-token=SECRET]] <circuit|file.bench|file.blif> "
                 "[options] [--edit=FILE [--edit-full] [--no-supersede]]\n"
                 "       xsfq_client [connection flags] --status | "
                 "--cache-stats | --stats | --shutdown\n"
                 "       xsfq_client --fleet=EP1,EP2,... [--replicas=R] "
                 "<spec>... | --route <spec>... | --stats\n";
    return 2;
  }
  if (edit_path.empty() && (edit_full || !supersede)) {
    std::cerr << "--edit-full and --no-supersede require --edit=FILE\n";
    return 2;
  }
  if (act == action::route && !fleet_mode) {
    std::cerr << "--route requires --fleet=EP1,EP2,...\n";
    return 2;
  }
  if (fleet_mode && (act == action::status || act == action::cache_stats ||
                     act == action::shutdown)) {
    std::cerr << "--fleet supports synthesis, --route, and --stats only\n";
    return 2;
  }
  if (fleet_mode && (want_trace || !tcp_address.empty())) {
    std::cerr << "--fleet replaces --tcp and does not support --trace\n";
    return 2;
  }
  if (!fleet_mode && specs.size() > 1) {
    std::cerr << "unexpected argument: " << specs[1]
              << " (a multi-circuit corpus needs --fleet)\n";
    return 2;
  }
  if (!edit_path.empty() && specs.size() > 1) {
    std::cerr << "--edit takes exactly one base circuit\n";
    return 2;
  }

  try {
    if (fleet_mode) {
      // One endpoint per comma-separated item; '/' marks a Unix socket
      // path, anything else is HOST:PORT.  The ring identity of each
      // endpoint is canonical (fleet_client::endpoint_id), so every client
      // pointed at the same --fleet list routes identically.
      std::vector<serve::endpoint> endpoints;
      std::stringstream ss(fleet_spec);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (item.empty()) continue;
        serve::endpoint ep;
        if (item.find('/') != std::string::npos) {
          ep.socket_path = item;
        } else {
          const auto colon = item.find_last_of(':');
          if (colon == std::string::npos || colon == item.size() - 1) {
            throw std::runtime_error(
                "--fleet endpoint expects a socket path or HOST:PORT, "
                "got: " + item);
          }
          ep.host = item.substr(0, colon);
          const int p = std::atoi(item.c_str() + colon + 1);
          if (p <= 0 || p > 65535) {
            throw std::runtime_error("--fleet endpoint has a bad port: " +
                                     item);
          }
          ep.port = static_cast<std::uint16_t>(p);
          ep.auth_token = auth_token;
        }
        endpoints.push_back(std::move(ep));
      }
      serve::fleet_options fopts;
      fopts.replicas = fleet_replicas;
      if (retries > 0) fopts.policy.max_retries = retries;
      fopts.policy.initial_backoff_ms = backoff_ms;
      fopts.policy.request_timeout_ms = timeout_ms;
      serve::fleet_client fleet(std::move(endpoints), fopts);

      if (act == action::server_stats) {
        std::cout << serve::format_fleet_stats_text(fleet.stats());
        return 0;
      }
      if (act == action::route) {
        // Pure ring lookup, no daemon contact: `<spec> <primary> <next>...`
        // per line — `awk '{print $2}'` hands CI its kill -9 victim.
        for (const auto& s : specs) {
          const auto req = serve::make_request_for_spec(s);
          std::cout << s;
          for (const auto& owner :
               fleet.owners_for(serve::fleet_client::routing_key(req))) {
            std::cout << ' ' << owner;
          }
          std::cout << '\n';
        }
        return 0;
      }

      int rc = 0;
      for (const auto& s : specs) {
        serve::synth_request req = serve::make_request_for_spec(s);
        serve::apply_cli_options(synth, req);
        req.stream_progress = false;  // fleet sends carry no progress stream
        req.priority = static_cast<std::uint8_t>(priority);
        req.deadline_ms = deadline_ms;
        serve::synth_response resp;
        if (edit_path.empty()) {
          resp = fleet.submit(req);
        } else {
          std::ifstream in(edit_path);
          if (!in) {
            std::cerr << "cannot read edit script: " << edit_path << "\n";
            return 2;
          }
          serve::synth_delta_request dreq;
          dreq.base = req;
          dreq.base_content_hash =
              serve::load_request_circuit(req).content_hash();
          dreq.edit_text.assign(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
          dreq.supersede_base = supersede;
          dreq.force_full = edit_full;
          resp = fleet.submit_delta(dreq);
          if (resp.ok) {
            std::fprintf(stderr, "content_hash=%016llx\n",
                         static_cast<unsigned long long>(resp.content_hash));
          }
        }
        rc = std::max(rc, serve::render_synth_response(resp, synth));
      }
      // The chaos drill's assertion surface: grep fleet_failovers_total.
      const auto& fc = fleet.counters();
      std::fprintf(stderr,
                   "fleet_requests_total=%llu fleet_failovers_total=%llu "
                   "fleet_hedged_total=%llu fleet_hedge_wins_total=%llu "
                   "fleet_probes_total=%llu "
                   "fleet_eco_full_fallbacks_total=%llu\n",
                   static_cast<unsigned long long>(fc.requests),
                   static_cast<unsigned long long>(fc.failovers),
                   static_cast<unsigned long long>(fc.hedged),
                   static_cast<unsigned long long>(fc.hedge_wins),
                   static_cast<unsigned long long>(fc.probes),
                   static_cast<unsigned long long>(fc.eco_full_fallbacks));
      return rc;
    }

    auto parse_tcp = [&](std::string& host, std::uint16_t& port) {
      const auto colon = tcp_address.find_last_of(':');
      if (colon == std::string::npos || colon == tcp_address.size() - 1) {
        throw std::runtime_error("--tcp expects HOST:PORT, got: " +
                                 tcp_address);
      }
      host = tcp_address.substr(0, colon);
      const int p = std::atoi(tcp_address.c_str() + colon + 1);
      if (p <= 0 || p > 65535) {
        throw std::runtime_error("--tcp has a bad port: " + tcp_address);
      }
      port = static_cast<std::uint16_t>(p);
    };
    auto make_client = [&]() {
      if (tcp_address.empty()) {
        auto cli = std::make_unique<serve::client>(socket_path);
        if (timeout_ms > 0) cli->set_receive_timeout_ms(timeout_ms);
        return cli;
      }
      std::string host;
      std::uint16_t port = 0;
      parse_tcp(host, port);
      auto cli = std::make_unique<serve::client>(host, port);
      if (timeout_ms > 0) cli->set_receive_timeout_ms(timeout_ms);
      if (!auth_token.empty()) cli->authenticate(auth_token);
      return cli;
    };
    // --shutdown is the one request that must NOT be retried (the daemon
    // acknowledging and then dying looks like a transport failure, and a
    // resubmit would just fail against the dead socket); it always takes
    // the plain fail-fast path.
    std::unique_ptr<serve::resilient_client> rcli;
    if (retries > 0 && act != action::shutdown) {
      serve::endpoint ep;
      if (tcp_address.empty()) {
        ep.socket_path = socket_path;
      } else {
        parse_tcp(ep.host, ep.port);
      }
      ep.auth_token = auth_token;
      serve::retry_policy policy;
      policy.max_retries = retries;
      policy.initial_backoff_ms = backoff_ms;
      policy.request_timeout_ms = timeout_ms;
      rcli = std::make_unique<serve::resilient_client>(ep, policy);
    }
    auto report_attempts = [&]() {
      if (rcli) {
        std::fprintf(stderr, "client_retries=%llu client_reconnects=%llu\n",
                     static_cast<unsigned long long>(rcli->retries()),
                     static_cast<unsigned long long>(rcli->reconnects()));
      }
    };
    switch (act) {
      case action::status: {
        const auto s = rcli ? rcli->status() : make_client()->status();
        std::cout << "jobs_submitted=" << s.jobs_submitted
                  << " jobs_completed=" << s.jobs_completed
                  << " jobs_failed=" << s.jobs_failed
                  << " active_connections=" << s.active_connections
                  << " worker_threads=" << s.worker_threads
                  << " steals=" << s.steals << " uptime_s=" << s.uptime_s
                  << "\n";
        report_attempts();
        return 0;
      }
      case action::cache_stats:
        print_cache_stats(rcli ? rcli->cache_stats()
                               : make_client()->cache_stats());
        report_attempts();
        return 0;
      case action::server_stats:
        std::cout << serve::format_server_stats_text(
            rcli ? rcli->server_stats() : make_client()->server_stats());
        report_attempts();
        return 0;
      case action::shutdown:
        make_client()->shutdown_server();
        std::cout << "daemon acknowledged shutdown\n";
        return 0;
      case action::synth:
        break;
    }

    serve::synth_request req = serve::make_request_for_spec(specs.front());
    serve::apply_cli_options(synth, req);
    req.stream_progress = synth.progress;
    req.priority = static_cast<std::uint8_t>(priority);
    req.deadline_ms = deadline_ms;

    // --trace: a random non-zero 16-byte id makes the daemon collect this
    // request's spans; we read them back once the result is in hand.
    trace::trace_id trace_id;
    if (want_trace) {
      std::random_device rd;
      const auto word = [&rd] {
        return (static_cast<std::uint64_t>(rd()) << 32) |
               static_cast<std::uint64_t>(rd());
      };
      trace_id.hi = word();
      trace_id.lo = word();
      if (!trace_id.valid()) trace_id.lo = 1;
      req.trace_hi = trace_id.hi;
      req.trace_lo = trace_id.lo;
      // Install locally too, so retry/reconnect log lines correlate.
      trace::set_current(trace_id);
    }

    serve::synth_response resp;
    if (edit_path.empty()) {
      resp = rcli ? rcli->submit(req, serve::print_progress_event)
                  : make_client()->submit(req, serve::print_progress_event);
    } else {
      std::ifstream in(edit_path);
      if (!in) {
        std::cerr << "cannot read edit script: " << edit_path << "\n";
        return 2;
      }
      serve::synth_delta_request dreq;
      dreq.base = req;
      // Hash the base circuit locally: the daemon verifies its retained (or
      // rebuilt) base network against this before replaying the edit.
      dreq.base_content_hash = serve::load_request_circuit(req).content_hash();
      dreq.edit_text.assign(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>());
      dreq.supersede_base = supersede;
      dreq.force_full = edit_full;
      resp = rcli ? rcli->submit_delta(dreq, serve::print_progress_event)
                  : make_client()->submit_delta(dreq,
                                                serve::print_progress_event);
      if (resp.ok) {
        std::fprintf(stderr, "content_hash=%016llx\n",
                     static_cast<unsigned long long>(resp.content_hash));
      }
    }
    report_attempts();
    if (want_trace) {
      serve::trace_request treq;
      treq.trace_hi = trace_id.hi;
      treq.trace_lo = trace_id.lo;
      print_trace_waterfall(trace_id, rcli ? rcli->trace(treq)
                                           : make_client()->trace(treq));
    }
    if (synth.progress && resp.served_from_cache) {
      std::cerr << "(served from daemon cache)\n";
    }
    // The rendering IS xsfq_synth's: one shared printer, byte for byte.
    return serve::render_synth_response(resp, synth);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
