/// Sequential xSFQ by example: a parameterizable up-counter mapped with DROC
/// flip-flop pairs and simulated pulse by pulse, showing the alternating
/// excite/relax protocol of Figures 1, 6 and 7.
///
///   $ ./counter_pulse_sim [bits] [cycles]
#include <cstdlib>
#include <iostream>

#include "core/mapper.hpp"
#include "pulsesim/pulse_sim.hpp"

using namespace xsfq;

int main(int argc, char** argv) {
  const unsigned bits = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3;
  const unsigned cycles = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 10;

  // Build an n-bit synchronous up-counter with an enable input.
  aig g;
  const signal enable = g.create_pi("en");
  std::vector<signal> state;
  for (unsigned i = 0; i < bits; ++i) {
    state.push_back(g.create_register_output(false, "q" + std::to_string(i)));
  }
  signal carry = enable;
  for (unsigned i = 0; i < bits; ++i) {
    g.set_register_input(i, g.create_xor(state[i], carry));
    carry = g.create_and(carry, state[i]);
    g.create_po(state[i], "out" + std::to_string(i));
  }

  mapping_params params;
  params.reg_style = register_style::pair_boundary;  // Fig. 6ii flip-flops
  const auto m = map_to_xsfq(g, params);
  std::cout << bits << "-bit counter: " << m.netlist.summary() << "\n";
  std::cout << "each flip-flop = a DROC pair (D1 preloaded with the\n"
            << "complement-phase bit, D2 with the reset value)\n\n";

  pulse_simulator sim(m.netlist, m.register_feedback);
  sim.reset();
  std::cout << "cycle | value | excite/relax protocol\n";
  for (unsigned c = 0; c < cycles; ++c) {
    const auto r = sim.run_cycle({true});
    unsigned value = 0;
    for (unsigned i = 0; i < bits; ++i) {
      if (r.outputs[i]) value |= 1u << i;
    }
    std::cout << "  " << c << "   |  " << value << "   | "
              << (r.alternating_ok ? "cells reinitialized" : "VIOLATION")
              << ", " << (r.outputs_consistent ? "rails alternate" : "BROKEN")
              << "\n";
  }

  // Hold the counter (enable low): the state must freeze while the
  // alternating protocol keeps running underneath.
  std::cout << "\nwith enable low:\n";
  for (unsigned c = 0; c < 3; ++c) {
    const auto r = sim.run_cycle({false});
    unsigned value = 0;
    for (unsigned i = 0; i < bits; ++i) {
      if (r.outputs[i]) value |= 1u << i;
    }
    std::cout << "  hold | " << value << "   | "
              << (r.alternating_ok ? "ok" : "VIOLATION") << "\n";
  }
  return 0;
}
