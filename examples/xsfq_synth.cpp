/// xsfq_synth — the end-to-end synthesis CLI (the "Yosys + ABC + mapper"
/// command of the paper's flow in one binary).
///
///   xsfq_synth <circuit> [options]
///   xsfq_synth --corpus=DIR [options]
///     <circuit>          benchmark name (c880, dec, s298, ...) or a
///                        .bench / .blif file path
///     --corpus=DIR       synthesize every .bench/.blif under DIR through
///                        the parallel batch runner (summary table output)
///     --polarity=MODE    direct | positive | optimized   (default optimized)
///     --pipeline=K       architectural pipeline stages (combinational only)
///     --registers=STYLE  boundary | retimed              (default retimed)
///     --verilog=FILE     write the mapped xSFQ netlist as structural Verilog
///     --dot=FILE         write the mapped netlist as Graphviz
///     --liberty=FILE     write the Table 2 cell library (.lib)
///     --flow-jobs=N      intra-flow parallelism: partition the optimize
///                        stage into N regions run concurrently on the
///                        worker pool (1 = sequential pipeline; the
///                        partition count changes the result deterministically
///                        and joins the result-cache key)
///     --validate         pulse-level validation against the golden model,
///                        plus per-pass sim-equivalence checks in optimize
///     --timing           also print per-stage counters as CSV (for perf
///                        tracking: ms, nodes, cuts, rewrites, arena bytes,
///                        sim words / node evaluations)
///     --no-timing        suppress the wall-clock timing footer, leaving
///                        only deterministic output (CI diffs local runs
///                        against xsfq_client runs byte for byte)
///     --cache-dir=DIR    disk-persistent result cache: repeated invocations
///                        on the same circuit+options reuse prior results
///     --threads=N        worker threads for --corpus (0 = hardware)
///     --progress         stream per-stage progress to stderr
///
/// The synthesis itself runs through serve::run_synth — the exact driver the
/// xsfq_served daemon executes — so a local run and a served run of the same
/// circuit+options produce byte-identical deterministic output.
///
/// SIGINT/SIGTERM drain gracefully: in corpus mode, entries not yet started
/// are skipped, in-flight entries finish (their disk-cache writes are
/// synchronous and atomic), and the summary reports what completed.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "flow/batch_runner.hpp"
#include "serve/synth_service.hpp"

using namespace xsfq;

namespace {

// Lock-free atomic (not volatile sig_atomic_t): the handler runs on the
// main thread but pool workers on other cores poll the flag to drain.
std::atomic<int> g_signal{0};
static_assert(std::atomic<int>::is_always_lock_free);

void signal_handler(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = signal_handler;
  sa.sa_flags = SA_RESTART;  // keep in-flight IO running while we drain
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

struct cli_options {
  std::string spec;
  std::string corpus_dir;
  std::string cache_dir;
  unsigned threads = 0;
  serve::synth_cli_options synth;  ///< shared with xsfq_client
};

int run_corpus(const cli_options& cli) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& de : fs::directory_iterator(cli.corpus_dir)) {
    const std::string ext = de.path().extension().string();
    if (ext == ".bench" || ext == ".blif") {
      files.push_back(de.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "corpus: no .bench/.blif files under " << cli.corpus_dir
              << "\n";
    return 2;
  }

  flow::batch_runner runner(cli.threads);
  if (!cli.cache_dir.empty()) runner.set_disk_cache(cli.cache_dir);

  flow::flow_options options;
  options.map = cli.synth.map;
  options.opt.validate_passes = cli.synth.validate;
  // Intra-flow parallelism applies per entry; the runner injects its own
  // pool as the partition executor.  With a busy corpus this mostly helps
  // the stragglers at the tail of a skewed suite.
  options.opt.flow_jobs = std::max(1u, cli.synth.flow_jobs);

  // One enqueue per file: the corpus multiplexes onto the work-stealing
  // pool exactly like concurrent service clients do.  Parsing happens
  // inside the job, so a malformed file fails its own entry (and parsing
  // parallelizes) instead of aborting the whole run.  Each job checks the
  // signal flag on entry, so a SIGINT drains in-flight work and skips the
  // rest instead of aborting mid-write.
  std::vector<std::future<flow::flow_result>> futures;
  futures.reserve(files.size());
  for (const auto& file : files) {
    futures.push_back(runner.enqueue_job([&runner, file, options] {
      if (g_signal != 0) {
        throw std::runtime_error("skipped: interrupted before start");
      }
      const serve::synth_request req = serve::make_request_for_spec(file);
      return runner.run_cached(serve::load_request_circuit(req), file,
                               options);
    }));
  }

  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::cout << "circuit,gates,jj,savings,ms\n";
  for (std::size_t i = 0; i < files.size(); ++i) {
    try {
      const flow::flow_result r = futures[i].get();
      const double savings =
          r.mapped.stats.jj > 0
              ? static_cast<double>(r.baseline.jj_without_clock) /
                    static_cast<double>(r.mapped.stats.jj)
              : 0.0;
      std::cout << r.name << "," << r.optimized.num_gates() << ","
                << r.mapped.stats.jj << "," << savings << "," << r.total_ms
                << "\n";
      ++completed;
    } catch (const std::exception& e) {
      const std::string what = e.what();
      if (what.rfind("skipped:", 0) == 0) {
        ++skipped;
      } else {
        std::cout << files[i] << ",error," << what << "\n";
        ++failed;
      }
    }
  }
  std::cout << "corpus: " << completed << " completed, " << failed
            << " failed, " << skipped << " skipped of " << files.size()
            << " (threads " << runner.num_threads() << ")\n";
  const auto stats = runner.cache_stats();
  std::cout << "cache:  full " << stats.full_hits << "/"
            << stats.full_hits + stats.full_misses << " hits, disk "
            << stats.disk_hits << " hits " << stats.disk_writes
            << " writes\n";
  if (g_signal != 0) {
    std::cout << "interrupted: drained in-flight entries and flushed the "
                 "disk cache\n";
    return 130;  // partial CSV must not read as a completed sweep
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: xsfq_synth <circuit|file.bench|file.blif> "
                 "[--polarity=...] [--pipeline=K] [--registers=...]\n"
                 "                  [--verilog=F] [--dot=F] [--liberty=F] "
                 "[--validate] [--timing] [--no-timing]\n"
                 "                  [--cache-dir=DIR] [--progress] "
                 "[--flow-jobs=N]\n"
                 "       xsfq_synth --corpus=DIR [--threads=N] [options]\n";
    return 2;
  }
  cli_options cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string error;
    switch (serve::parse_synth_option(arg, cli.synth, error)) {
      case serve::cli_parse::consumed:
        continue;
      case serve::cli_parse::invalid:
        std::cerr << error << "\n";
        return 2;
      case serve::cli_parse::not_synth_option:
        break;
    }
    if (auto v = serve::cli_value(arg, "--corpus"); !v.empty()) {
      cli.corpus_dir = v;
    } else if (auto v2 = serve::cli_value(arg, "--cache-dir"); !v2.empty()) {
      cli.cache_dir = v2;
    } else if (auto v3 = serve::cli_value(arg, "--threads"); !v3.empty()) {
      const auto n = flow::parse_thread_count(v3.c_str());
      if (!n) {
        std::cerr << "--threads expects 0..256, got: " << v3 << "\n";
        return 2;
      }
      cli.threads = *n;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    } else if (cli.spec.empty()) {
      cli.spec = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return 2;
    }
  }
  if (cli.spec.empty() == cli.corpus_dir.empty()) {
    std::cerr << "expected exactly one of <circuit> or --corpus=DIR\n";
    return 2;
  }
  if (!cli.corpus_dir.empty() &&
      (!cli.synth.verilog_path.empty() || !cli.synth.dot_path.empty() ||
       !cli.synth.liberty_path.empty() || cli.synth.progress)) {
    // Rejecting beats silently dropping the user's request: corpus mode
    // prints a summary table, not per-circuit artifacts (--validate is
    // honored as per-pass sim checks inside every entry's optimize stage).
    std::cerr << "--verilog/--dot/--liberty/--progress are not supported "
                 "with --corpus\n";
    return 2;
  }

  install_signal_handlers();
  try {
    if (!cli.corpus_dir.empty()) return run_corpus(cli);

    // The CLI is literally the served flow: the same synth_request driver
    // the daemon runs, on a process-local single-worker runner, rendered by
    // the same response printer xsfq_client uses.
    serve::synth_request req = serve::make_request_for_spec(cli.spec);
    serve::apply_cli_options(cli.synth, req);

    // One worker runs the flow; extra workers only exist to serve the
    // partitioned optimize's subtasks when --flow-jobs asks for them.
    // Capped at the hardware: surplus workers on a small machine would just
    // timeshare the cores the partitions already occupy.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    flow::batch_runner runner(std::max(1u, std::min(cli.synth.flow_jobs, hw)));
    if (!cli.cache_dir.empty()) runner.set_disk_cache(cli.cache_dir);

    const auto progress = [&](const serve::progress_event& ev) {
      if (cli.synth.progress) serve::print_progress_event(ev);
    };
    const serve::synth_response resp = serve::run_synth(req, runner, progress);
    const int code = serve::render_synth_response(resp, cli.synth);
    if (code != 0) return code;
    if (g_signal != 0) return 130;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
