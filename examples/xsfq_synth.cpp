/// xsfq_synth — the end-to-end synthesis CLI (the "Yosys + ABC + mapper"
/// command of the paper's flow in one binary).
///
///   xsfq_synth <circuit> [options]
///     <circuit>          benchmark name (c880, dec, s298, ...) or a
///                        .bench / .blif file path
///     --polarity=MODE    direct | positive | optimized   (default optimized)
///     --pipeline=K       architectural pipeline stages (combinational only)
///     --registers=STYLE  boundary | retimed              (default retimed)
///     --verilog=FILE     write the mapped xSFQ netlist as structural Verilog
///     --dot=FILE         write the mapped netlist as Graphviz
///     --liberty=FILE     write the Table 2 cell library (.lib)
///     --validate         pulse-level validation against the golden model
#include <fstream>
#include <iostream>
#include <string>

#include "baseline/rsfq.hpp"
#include "benchgen/registry.hpp"
#include "cells/cell_library.hpp"
#include "core/mapper.hpp"
#include "core/xsfq_writer.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "opt/script.hpp"
#include "pulsesim/pulse_sim.hpp"

using namespace xsfq;

namespace {

aig load_circuit(const std::string& spec) {
  if (spec.size() > 6 && spec.ends_with(".bench")) {
    return read_bench_file(spec).to_aig();
  }
  if (spec.size() > 5 && spec.ends_with(".blif")) {
    return read_blif_file(spec).to_aig();
  }
  return benchgen::make_benchmark(spec);
}

std::string option_value(const std::string& arg, const std::string& key) {
  if (arg.rfind(key + "=", 0) == 0) return arg.substr(key.size() + 1);
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: xsfq_synth <circuit|file.bench|file.blif> "
                 "[--polarity=...] [--pipeline=K] [--registers=...]\n"
                 "                  [--verilog=F] [--dot=F] [--liberty=F] "
                 "[--validate]\n";
    return 2;
  }
  const std::string spec = argv[1];
  mapping_params params;
  std::string verilog_path;
  std::string dot_path;
  std::string liberty_path;
  bool validate = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (auto v = option_value(arg, "--polarity"); !v.empty()) {
      params.polarity = v == "direct" ? polarity_mode::direct_dual_rail
                        : v == "positive" ? polarity_mode::positive_outputs
                                          : polarity_mode::optimized;
    } else if (auto v2 = option_value(arg, "--pipeline"); !v2.empty()) {
      params.pipeline_stages = static_cast<unsigned>(std::stoul(v2));
    } else if (auto v3 = option_value(arg, "--registers"); !v3.empty()) {
      params.reg_style = v3 == "boundary" ? register_style::pair_boundary
                                          : register_style::pair_retimed;
    } else if (auto v4 = option_value(arg, "--verilog"); !v4.empty()) {
      verilog_path = v4;
    } else if (auto v5 = option_value(arg, "--dot"); !v5.empty()) {
      dot_path = v5;
    } else if (auto v6 = option_value(arg, "--liberty"); !v6.empty()) {
      liberty_path = v6;
    } else if (arg == "--validate") {
      validate = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }

  try {
    const aig raw = load_circuit(spec);
    std::cout << "loaded " << spec << ": " << raw.num_pis() << " PI, "
              << raw.num_pos() << " PO, " << raw.num_registers() << " FF, "
              << raw.num_gates() << " AIG nodes\n";

    optimize_stats ost;
    const aig opt = optimize(raw, {}, &ost);
    std::cout << "optimized: " << ost.initial_gates << " -> "
              << ost.final_gates << " nodes (depth " << ost.initial_depth
              << " -> " << ost.final_depth << ")\n";

    const auto mapped = map_to_xsfq(opt, params);
    std::cout << "mapped:    " << mapped.netlist.summary() << "\n";
    const auto base = map_to_rsfq(opt);
    std::cout << "baseline:  clocked RSFQ " << base.jj_without_clock << " JJ ("
              << base.jj_with_clock << " with clock tree) -> savings "
              << static_cast<double>(base.jj_without_clock) /
                     static_cast<double>(mapped.stats.jj)
              << "x\n";

    if (validate) {
      const bool seq_retimed =
          opt.num_registers() > 0 &&
          params.reg_style == register_style::pair_retimed;
      if (seq_retimed) {
        std::cout << "validate:  (retimed sequential: structural checks only;"
                     " use --registers=boundary for cycle-exact validation)\n";
      } else {
        const bool ok = pulse_simulator::equivalent_to_aig(opt, mapped, 32);
        std::cout << "validate:  pulse-level equivalence "
                  << (ok ? "PASS" : "FAIL") << "\n";
        if (!ok) return 1;
      }
    }
    if (!verilog_path.empty()) {
      std::ofstream os(verilog_path);
      write_xsfq_verilog(mapped, spec, os);
      std::cout << "wrote " << verilog_path << "\n";
    }
    if (!dot_path.empty()) {
      std::ofstream os(dot_path);
      write_xsfq_dot(mapped, os);
      std::cout << "wrote " << dot_path << "\n";
    }
    if (!liberty_path.empty()) {
      std::ofstream os(liberty_path);
      os << cell_library::sfq5ee().to_liberty("xsfq_sfq5ee");
      std::cout << "wrote " << liberty_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
