/// xsfq_synth — the end-to-end synthesis CLI (the "Yosys + ABC + mapper"
/// command of the paper's flow in one binary).
///
///   xsfq_synth <circuit> [options]
///     <circuit>          benchmark name (c880, dec, s298, ...) or a
///                        .bench / .blif file path
///     --polarity=MODE    direct | positive | optimized   (default optimized)
///     --pipeline=K       architectural pipeline stages (combinational only)
///     --registers=STYLE  boundary | retimed              (default retimed)
///     --verilog=FILE     write the mapped xSFQ netlist as structural Verilog
///     --dot=FILE         write the mapped netlist as Graphviz
///     --liberty=FILE     write the Table 2 cell library (.lib)
///     --validate         pulse-level validation against the golden model,
///                        plus per-pass sim-equivalence checks in optimize
///     --timing           also print per-stage counters as CSV (for perf
///                        tracking: ms, nodes, cuts, rewrites, arena bytes,
///                        sim words / node evaluations)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "benchgen/registry.hpp"
#include "cells/cell_library.hpp"
#include "core/xsfq_writer.hpp"
#include "flow/flow.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "pulsesim/pulse_sim.hpp"

using namespace xsfq;

namespace {

aig load_circuit(const std::string& spec) {
  if (spec.size() > 6 && spec.ends_with(".bench")) {
    return read_bench_file(spec).to_aig();
  }
  if (spec.size() > 5 && spec.ends_with(".blif")) {
    return read_blif_file(spec).to_aig();
  }
  return benchgen::make_benchmark(spec);
}

std::string option_value(const std::string& arg, const std::string& key) {
  if (arg.rfind(key + "=", 0) == 0) return arg.substr(key.size() + 1);
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: xsfq_synth <circuit|file.bench|file.blif> "
                 "[--polarity=...] [--pipeline=K] [--registers=...]\n"
                 "                  [--verilog=F] [--dot=F] [--liberty=F] "
                 "[--validate] [--timing]\n";
    return 2;
  }
  const std::string spec = argv[1];
  mapping_params params;
  std::string verilog_path;
  std::string dot_path;
  std::string liberty_path;
  bool validate = false;
  bool print_timing_csv = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (auto v = option_value(arg, "--polarity"); !v.empty()) {
      params.polarity = v == "direct" ? polarity_mode::direct_dual_rail
                        : v == "positive" ? polarity_mode::positive_outputs
                                          : polarity_mode::optimized;
    } else if (auto v2 = option_value(arg, "--pipeline"); !v2.empty()) {
      char* end = nullptr;
      const unsigned long k = std::strtoul(v2.c_str(), &end, 10);
      if (end == v2.c_str() || *end != '\0' || k > 64) {
        std::cerr << "--pipeline expects a stage count 0..64, got: " << v2
                  << "\n";
        return 2;
      }
      params.pipeline_stages = static_cast<unsigned>(k);
    } else if (auto v3 = option_value(arg, "--registers"); !v3.empty()) {
      params.reg_style = v3 == "boundary" ? register_style::pair_boundary
                                          : register_style::pair_retimed;
    } else if (auto v4 = option_value(arg, "--verilog"); !v4.empty()) {
      verilog_path = v4;
    } else if (auto v5 = option_value(arg, "--dot"); !v5.empty()) {
      dot_path = v5;
    } else if (auto v6 = option_value(arg, "--liberty"); !v6.empty()) {
      liberty_path = v6;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--timing") {
      print_timing_csv = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }

  try {
    // The CLI is literally the paper flow: a load front end composed with
    // the canned optimize -> map -> baseline pass manager from src/flow.
    flow::flow synth("xsfq_synth");
    synth.add_stage("load", [&spec](flow::flow_context& ctx) {
      ctx.name = spec;
      ctx.network = load_circuit(spec);
      std::cout << "loaded " << spec << ": " << ctx.network.num_pis()
                << " PI, " << ctx.network.num_pos() << " PO, "
                << ctx.network.num_registers() << " FF, "
                << ctx.network.num_gates() << " AIG nodes\n";
    });
    flow::flow_options options;
    options.map = params;
    // --validate also pins every optimize pass to its input with the wide
    // sim engine (the pulse-level check below covers the mapping side).
    options.opt.validate_passes = validate;
    synth.add_stages(flow::make_synthesis_flow(options));
    const auto r = synth.run();

    const aig& opt = r.optimized;
    const auto& mapped = r.mapped;
    const auto& base = r.baseline;
    std::cout << "optimized: " << r.opt_stats.initial_gates << " -> "
              << r.opt_stats.final_gates << " nodes (depth "
              << r.opt_stats.initial_depth << " -> "
              << r.opt_stats.final_depth << ")\n";
    std::cout << "mapped:    " << mapped.netlist.summary() << "\n";
    std::cout << "baseline:  clocked RSFQ " << base.jj_without_clock << " JJ ("
              << base.jj_with_clock << " with clock tree) -> savings "
              << static_cast<double>(base.jj_without_clock) /
                     static_cast<double>(mapped.stats.jj)
              << "x\n";
    std::cout << "timing:   ";
    for (const auto& st : r.timings) {
      std::cout << " " << st.stage << " " << st.ms << " ms";
    }
    std::cout << " (total " << r.total_ms << " ms)\n";
    if (print_timing_csv) {
      std::cout
          << "stage,ms,nodes,cuts,replacements,arena_bytes,sim_words,"
             "sim_node_evals\n";
      for (const auto& st : r.timings) {
        const auto& c = st.counters;
        std::cout << st.stage << "," << st.ms << "," << c.nodes << ","
                  << c.cuts << "," << c.replacements << "," << c.arena_bytes
                  << "," << c.sim_words << "," << c.sim_node_evals << "\n";
      }
    }

    if (validate) {
      const bool seq_retimed =
          opt.num_registers() > 0 &&
          params.reg_style == register_style::pair_retimed;
      if (seq_retimed) {
        std::cout << "validate:  (retimed sequential: structural checks only;"
                     " use --registers=boundary for cycle-exact validation)\n";
      } else {
        const bool ok = pulse_simulator::equivalent_to_aig(opt, mapped, 32);
        std::cout << "validate:  pulse-level equivalence "
                  << (ok ? "PASS" : "FAIL") << "\n";
        if (!ok) return 1;
      }
    }
    if (!verilog_path.empty()) {
      std::ofstream os(verilog_path);
      write_xsfq_verilog(mapped, spec, os);
      std::cout << "wrote " << verilog_path << "\n";
    }
    if (!dot_path.empty()) {
      std::ofstream os(dot_path);
      write_xsfq_dot(mapped, os);
      std::cout << "wrote " << dot_path << "\n";
    }
    if (!liberty_path.empty()) {
      std::ofstream os(liberty_path);
      os << cell_library::sfq5ee().to_liberty("xsfq_sfq5ee");
      std::cout << "wrote " << liberty_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
