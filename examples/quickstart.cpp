/// Quickstart: describe a small circuit, optimize it, map it to clock-free
/// xSFQ, inspect the costs, and validate it at pulse level — the whole
/// public API in ~60 lines.
///
///   $ ./quickstart
#include <iostream>

#include "aig/aig.hpp"
#include "core/mapper.hpp"
#include "netlist/bench_io.hpp"
#include "opt/script.hpp"
#include "pulsesim/pulse_sim.hpp"

using namespace xsfq;

int main() {
  // 1. Describe the logic: a 4-bit ripple-carry adder.
  aig design;
  std::vector<signal> a;
  std::vector<signal> b;
  for (int i = 0; i < 4; ++i) a.push_back(design.create_pi("a" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) b.push_back(design.create_pi("b" + std::to_string(i)));
  signal carry = design.get_constant(false);
  for (int i = 0; i < 4; ++i) {
    const signal sum = design.create_xor(design.create_xor(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]), carry);
    carry = design.create_maj(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], carry);
    design.create_po(sum, "s" + std::to_string(i));
  }
  design.create_po(carry, "cout");

  // 2. Optimize with the ABC-style script (balance / rewrite / refactor).
  optimize_stats opt_stats;
  const aig optimized = optimize(design, {}, &opt_stats);
  std::cout << "optimize: " << opt_stats.initial_gates << " -> "
            << opt_stats.final_gates << " AIG nodes, depth "
            << opt_stats.initial_depth << " -> " << opt_stats.final_depth
            << "\n";

  // 3. Map to clock-free xSFQ (dual-rail LA/FA with polarity optimization).
  const mapping_result mapped = map_to_xsfq(optimized);
  std::cout << "mapped:   " << mapped.netlist.summary() << "\n";
  std::cout << "          duplication penalty "
            << static_cast<int>(mapped.stats.duplication * 100) << "% (direct"
            << " dual-rail mapping would be 100%)\n";

  // 4. Validate at pulse level against the golden Boolean model.
  const bool ok = pulse_simulator::equivalent_to_aig(optimized, mapped, 32);
  std::cout << "pulse-level validation: " << (ok ? "PASS" : "FAIL") << "\n";

  // 5. Interoperate: write the optimized logic as a BENCH netlist.
  std::cout << "\nBENCH netlist of the optimized design:\n"
            << write_bench_string(netlist_from_aig(optimized, "adder4"));
  return ok ? 0 : 1;
}
