/// xsfq_served — the synthesis-as-a-service daemon.
///
///   xsfq_served [--socket=PATH] [--listen=HOST:PORT] [--auth-token=SECRET]
///               [--threads=N] [--cache-dir=DIR] [--max-disk-entries=N]
///               [--retained-bytes=N] [--max-queue=N] [--max-inflight=N]
///               [--max-conns=N] [--io-timeout-ms=N] [--idle-timeout-ms=N]
///               [--faults=SCHED] [--log-level=LEVEL] [--trace-out=DIR]
///
/// Owns one long-lived flow::batch_runner behind up to two listeners
/// speaking the serve protocol (src/serve/protocol.hpp): the Unix-domain
/// socket (local clients) and, with --listen, a TCP endpoint for remote
/// ones.  Clients submit circuits, stream per-stage progress, and fetch
/// results that are byte-identical to a local xsfq_synth run — while the
/// daemon keeps every cache tier warm across requests and, with
/// --cache-dir, across restarts.
///
/// TCP clients must authenticate with the shared secret when one is
/// configured (--auth-token, or the XSFQ_AUTH_TOKEN environment variable so
/// the secret stays out of `ps` output).  Admission control (--max-queue /
/// --max-inflight) sheds load with typed `overloaded` errors instead of
/// queueing unboundedly; --max-conns bounds handler threads the same way.
///
/// Every connection runs under an I/O deadline (--io-timeout-ms, default
/// 30000; 0 disables): a peer that stalls mid-frame or stops draining its
/// socket gets a typed io_timeout error and its handler thread back,
/// instead of pinning it (--idle-timeout-ms separately bounds quiet
/// keep-alive connections).  --faults=SCHEDULE (or XSFQ_FAULTS=) arms the
/// deterministic fault-injection registry (util/fault.hpp) for chaos
/// drills; never set it in production.
///
/// Observability (v6): --log-level=LEVEL (trace|debug|info|warn|error|off,
/// default info) gates the structured logfmt stream on stderr — one line
/// per connection/request lifecycle event, each carrying the request's
/// trace_id when the client sent one.  --trace-out=DIR exports every traced
/// request's span tree as Chrome trace-event JSON (Perfetto-loadable) to
/// DIR.  SIGUSR1 dumps the always-on flight recorder — the last ~2k spans
/// per thread, traced or not — to xsfq_flight_<pid>.json (in --trace-out's
/// directory when set, else the working directory) and keeps serving.
///
/// Runs in the foreground (a supervisor or `&` backgrounds it).  SIGINT,
/// SIGTERM, or a client `shutdown` request drain gracefully: in-flight
/// requests finish and receive their responses, disk-cache writes land
/// atomically, and the process exits 0.  docs/operations.md covers
/// deployment, sizing, and failure modes.
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "flow/batch_runner.hpp"
#include "serve/server.hpp"
#include "serve/synth_service.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

using namespace xsfq;

namespace {

bool parse_count(const std::string& value, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  out = static_cast<std::size_t>(n);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  serve::server_options options;
  options.socket_path = serve::default_socket_path;
  if (const char* env = std::getenv("XSFQ_AUTH_TOKEN"); env != nullptr) {
    options.auth_token = env;
  }
  const auto usage = [] {
    std::cerr << "usage: xsfq_served [--socket=PATH] [--listen=HOST:PORT] "
                 "[--auth-token=SECRET] [--threads=N] [--cache-dir=DIR] "
                 "[--max-disk-entries=N] [--retained-bytes=N] [--max-queue=N] "
                 "[--max-inflight=N] [--max-conns=N] [--io-timeout-ms=N] "
                 "[--idle-timeout-ms=N] [--faults=SCHEDULE] "
                 "[--log-level=LEVEL] [--trace-out=DIR]\n";
    return 2;
  };
  std::string fault_schedule;
  const auto parse_timeout = [](const std::string& value, int& out) {
    char* end = nullptr;
    const long n = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || n < 0 || n > 86400000)
      return false;
    out = static_cast<int>(n);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (auto v = serve::cli_value(arg, "--socket"); !v.empty()) {
      options.socket_path = v;
    } else if (auto vl = serve::cli_value(arg, "--listen"); !vl.empty()) {
      options.listen_address = vl;
    } else if (auto va = serve::cli_value(arg, "--auth-token"); !va.empty()) {
      options.auth_token = va;
    } else if (auto v2 = serve::cli_value(arg, "--threads"); !v2.empty()) {
      const auto n = flow::parse_thread_count(v2.c_str());
      if (!n) {
        std::cerr << "--threads expects 0..256, got: " << v2 << "\n";
        return 2;
      }
      options.threads = *n;
    } else if (auto v3 = serve::cli_value(arg, "--cache-dir"); !v3.empty()) {
      options.cache_dir = v3;
    } else if (auto v4 = serve::cli_value(arg, "--max-disk-entries");
               !v4.empty()) {
      if (!parse_count(v4, options.max_disk_entries)) {
        std::cerr << "--max-disk-entries expects a number (0 = unlimited), "
                     "got: " << v4 << "\n";
        return 2;
      }
    } else if (auto vr = serve::cli_value(arg, "--retained-bytes");
               !vr.empty()) {
      // Byte budget of the ECO retained-network LRU (v7); sub-megabyte
      // budgets are almost certainly a unit mistake, except 0 ("retain the
      // current base only"), which is a legitimate minimal setting.
      if (!parse_count(vr, options.retained_bytes)) {
        std::cerr << "--retained-bytes expects a byte count (default "
                     "268435456), got: " << vr << "\n";
        return 2;
      }
    } else if (auto v5 = serve::cli_value(arg, "--max-queue"); !v5.empty()) {
      if (!parse_count(v5, options.max_queue)) {
        std::cerr << "--max-queue expects a number (0 = shed everything that "
                     "cannot start immediately), got: " << v5 << "\n";
        return 2;
      }
    } else if (auto v6 = serve::cli_value(arg, "--max-inflight");
               !v6.empty()) {
      if (!parse_count(v6, options.max_inflight)) {
        std::cerr << "--max-inflight expects a number (0 = worker count), "
                     "got: " << v6 << "\n";
        return 2;
      }
    } else if (auto v7 = serve::cli_value(arg, "--max-conns"); !v7.empty()) {
      if (!parse_count(v7, options.max_conns) || options.max_conns == 0) {
        std::cerr << "--max-conns expects a positive number, got: " << v7
                  << "\n";
        return 2;
      }
    } else if (auto v8 = serve::cli_value(arg, "--io-timeout-ms");
               !v8.empty()) {
      if (!parse_timeout(v8, options.io_timeout_ms)) {
        std::cerr << "--io-timeout-ms expects 0..86400000 (0 = no deadline), "
                     "got: " << v8 << "\n";
        return 2;
      }
    } else if (auto v9 = serve::cli_value(arg, "--idle-timeout-ms");
               !v9.empty()) {
      if (!parse_timeout(v9, options.idle_timeout_ms)) {
        std::cerr << "--idle-timeout-ms expects 0..86400000 (0 = forever), "
                     "got: " << v9 << "\n";
        return 2;
      }
    } else if (auto vf = serve::cli_value(arg, "--faults"); !vf.empty()) {
      fault_schedule = vf;
    } else if (auto vll = serve::cli_value(arg, "--log-level"); !vll.empty()) {
      log::level lvl;
      if (!log::parse_level(vll, lvl)) {
        std::cerr << "--log-level expects trace|debug|info|warn|error|off, "
                     "got: " << vll << "\n";
        return 2;
      }
      log::set_level(lvl);
    } else if (auto vto = serve::cli_value(arg, "--trace-out"); !vto.empty()) {
      options.trace_out_dir = vto;
    } else {
      return usage();
    }
  }

  // Arm fault injection for chaos drills: the flag wins over the
  // environment so a drill script can override a stale export.  A bad
  // schedule must abort startup loudly, not run a fault-free "drill".
  try {
    if (!fault_schedule.empty()) {
      fault::arm(fault_schedule);
    } else {
      fault::arm_from_env();
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "xsfq_served: " << e.what() << "\n";
    return 2;
  }

  // Signals are consumed synchronously below; block them before any thread
  // exists so every server/worker thread inherits the mask.  SIGUSR1 joins
  // the set so the flight-recorder dump runs on the main thread — plain
  // function calls, no async-signal-safety gymnastics.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    serve::server srv(options);
    std::cout << "xsfq_served: listening on " << options.socket_path;
    if (!options.listen_address.empty()) {
      std::cout << " and tcp port " << srv.tcp_port()
                << (options.auth_token.empty() ? " (NO auth token)"
                                               : " (auth required)");
    }
    std::cout << " (" << srv.runner().num_threads() << " workers"
              << (options.cache_dir.empty()
                      ? std::string{}
                      : ", disk cache " + options.cache_dir)
              << ")\n";
    if (fault::armed()) {
      std::cout << "xsfq_served: FAULT INJECTION ARMED: " << fault::describe()
                << "\n";
    }
    std::cout << std::flush;

    // Two wake sources, one drain: a client shutdown request re-raises
    // SIGTERM so the main thread only ever waits in sigwait.
    std::thread shutdown_waiter([&srv] {
      srv.wait_shutdown_requested();
      if (srv.shutdown_requested()) kill(getpid(), SIGTERM);
    });
    int sig = 0;
    for (;;) {
      sigwait(&sigs, &sig);
      if (sig != SIGUSR1) break;
      // Flight-recorder dump: snapshot every thread's span ring to Chrome
      // trace-event JSON and keep serving.  Lands next to the per-request
      // exports when --trace-out is set, else in the working directory.
      const std::string dump_path =
          (options.trace_out_dir.empty() ? std::string{}
                                         : options.trace_out_dir + "/") +
          "xsfq_flight_" + std::to_string(getpid()) + ".json";
      if (trace::dump_chrome_trace(dump_path)) {
        log::line(log::level::info, "flight.dump").kv("path", dump_path);
      } else {
        log::line(log::level::warn, "flight.dump_failed").kv("path",
                                                             dump_path);
      }
    }
    std::cout << "xsfq_served: "
              << (srv.shutdown_requested() ? "shutdown requested"
                                           : strsignal(sig))
              << ", draining\n"
              << std::flush;
    srv.stop();
    shutdown_waiter.join();
    const auto status = srv.status();
    std::cout << "xsfq_served: served " << status.jobs_completed << "/"
              << status.jobs_submitted << " jobs, exiting\n";
  } catch (const std::exception& e) {
    std::cerr << "xsfq_served: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
