/// xsfq_served — the synthesis-as-a-service daemon.
///
///   xsfq_served [--socket=PATH] [--threads=N] [--cache-dir=DIR]
///               [--max-disk-entries=N]
///
/// Owns one long-lived flow::batch_runner behind a Unix-domain socket
/// speaking the serve protocol (src/serve/protocol.hpp): clients submit
/// circuits, stream per-stage progress, and fetch results that are
/// byte-identical to a local xsfq_synth run — while the daemon keeps every
/// cache tier warm across requests and, with --cache-dir, across restarts.
///
/// Runs in the foreground (a supervisor or `&` backgrounds it).  SIGINT,
/// SIGTERM, or a client `shutdown` request drain gracefully: in-flight
/// requests finish and receive their responses, disk-cache writes land
/// atomically, and the process exits 0.
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "flow/batch_runner.hpp"
#include "serve/server.hpp"
#include "serve/synth_service.hpp"

using namespace xsfq;

int main(int argc, char** argv) {
  serve::server_options options;
  options.socket_path = serve::default_socket_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (auto v = serve::cli_value(arg, "--socket"); !v.empty()) {
      options.socket_path = v;
    } else if (auto v2 = serve::cli_value(arg, "--threads"); !v2.empty()) {
      const auto n = flow::parse_thread_count(v2.c_str());
      if (!n) {
        std::cerr << "--threads expects 0..256, got: " << v2 << "\n";
        return 2;
      }
      options.threads = *n;
    } else if (auto v3 = serve::cli_value(arg, "--cache-dir"); !v3.empty()) {
      options.cache_dir = v3;
    } else if (auto v4 = serve::cli_value(arg, "--max-disk-entries");
               !v4.empty()) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v4.c_str(), &end, 10);
      if (end == v4.c_str() || *end != '\0') {
        std::cerr << "--max-disk-entries expects a number (0 = unlimited), "
                     "got: " << v4 << "\n";
        return 2;
      }
      options.max_disk_entries = static_cast<std::size_t>(n);
    } else {
      std::cerr << "usage: xsfq_served [--socket=PATH] [--threads=N] "
                   "[--cache-dir=DIR] [--max-disk-entries=N]\n";
      return 2;
    }
  }

  // Signals are consumed synchronously below; block them before any thread
  // exists so every server/worker thread inherits the mask.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    serve::server srv(options);
    std::cout << "xsfq_served: listening on " << options.socket_path << " ("
              << srv.runner().num_threads() << " workers"
              << (options.cache_dir.empty()
                      ? std::string{}
                      : ", disk cache " + options.cache_dir)
              << ")\n"
              << std::flush;

    // Two wake sources, one drain: a client shutdown request re-raises
    // SIGTERM so the main thread only ever waits in sigwait.
    std::thread shutdown_waiter([&srv] {
      srv.wait_shutdown_requested();
      if (srv.shutdown_requested()) kill(getpid(), SIGTERM);
    });
    int sig = 0;
    sigwait(&sigs, &sig);
    std::cout << "xsfq_served: "
              << (srv.shutdown_requested() ? "shutdown requested"
                                           : strsignal(sig))
              << ", draining\n"
              << std::flush;
    srv.stop();
    shutdown_waiter.join();
    const auto status = srv.status();
    std::cout << "xsfq_served: served " << status.jobs_completed << "/"
              << status.jobs_submitted << " jobs, exiting\n";
  } catch (const std::exception& e) {
    std::cerr << "xsfq_served: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
