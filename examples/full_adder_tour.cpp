/// The paper's running example as a guided tour: one full adder taken from
/// a NAND netlist through every optimization of Section 3, printing the
/// cell/splitter/JJ ledger at each step (Figures 4 and 5).
#include <iostream>

#include "aig/simulate.hpp"
#include "core/dual_rail.hpp"
#include "core/mapper.hpp"
#include "netlist/bench_io.hpp"
#include "opt/script.hpp"

using namespace xsfq;

namespace {

aig nand_full_adder() {
  // The Sec. 3.1.1 starting point: 9 NAND gates.
  const char* bench =
      "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n"
      "n1 = NAND(a, b)\nn2 = NAND(a, n1)\nn3 = NAND(b, n1)\n"
      "x  = NAND(n2, n3)\nn4 = NAND(x, cin)\nn5 = NAND(x, n4)\n"
      "n6 = NAND(cin, n4)\ns  = NAND(n5, n6)\ncout = NAND(n1, n4)\n";
  return read_bench_string(bench, "full_adder").to_aig();
}

void report(const char* stage, const aig& g, polarity_mode mode) {
  mapping_params p;
  p.polarity = mode;
  const auto m = map_to_xsfq(g, p);
  std::cout << "  " << stage << ": " << g.num_gates() << " AIG nodes -> "
            << m.stats.la_cells + m.stats.fa_cells << " LA/FA cells, "
            << m.stats.splitters << " splitters, " << m.stats.jj << "/"
            << m.stats.jj_ptl << " JJs\n";
}

}  // namespace

int main() {
  std::cout << "== Full-adder tour (the paper's Section 3 walk-through) ==\n\n";
  const aig nands = nand_full_adder();

  std::cout << "Step 1 — direct RTL-to-xSFQ (Sec. 3.1.1): every gate becomes\n"
            << "an LA-FA pair; inversion is a free wire twist.\n";
  report("9-NAND netlist, direct", nands, polarity_mode::direct_dual_rail);

  std::cout << "\nStep 2 — AIG optimization (Sec. 3.1.3): LA-FA pairs are\n"
            << "isomorphic to AIG nodes, so off-the-shelf rewriting applies.\n";
  const aig optimized = optimize(nands);
  report("optimized AIG, pairs", optimized, polarity_mode::direct_dual_rail);

  std::cout << "\nStep 3 — polarity relaxation at the outputs (Sec. 3.1.4):\n"
            << "primary outputs need one rail; demands propagate inward.\n";
  report("positive outputs", optimized, polarity_mode::positive_outputs);

  std::cout << "\nStep 4 — output phase assignment (Sec. 3.1.5): choosing\n"
            << "negative polarities domino-style minimizes duplicated rails.\n";
  report("optimized polarity", optimized, polarity_mode::optimized);

  // Per-node rail demands, to visualize what the optimizer did.
  const auto negate = optimize_co_polarities(optimized);
  const auto demands = compute_rail_demands(optimized, negate);
  std::cout << "\nRail demands per AIG node (P = LA cell, N = FA cell):\n  ";
  optimized.foreach_gate([&](aig::node_index n) {
    std::cout << "n" << n << ":"
              << (demands.positive(n) ? "P" : "")
              << (demands.negative(n) ? "N" : "") << " ";
  });
  std::cout << "\n\n(paper: 18 cells direct -> 14 after AIG opt -> 11 with\n"
            << " positive outputs -> 10 with the Fig. 5ii phase choice)\n";
  return 0;
}
