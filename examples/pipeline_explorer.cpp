/// Pipeline design-space exploration (the Table 5 experiment as a tool):
/// sweep architectural pipeline stages on any generated benchmark and print
/// the JJ / depth / frequency trade-off curve.
///
///   $ ./pipeline_explorer [circuit] [max_stages]
#include <cstdlib>
#include <iostream>

#include "benchgen/registry.hpp"
#include "core/mapper.hpp"
#include "opt/script.hpp"
#include "util/table_printer.hpp"

using namespace xsfq;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "c6288";
  const unsigned max_stages =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  std::cout << "== Pipeline explorer: " << name << " ==\n";
  const aig g = optimize(benchgen::make_benchmark(name));
  if (g.num_registers() > 0) {
    std::cout << "(sequential circuit: pipelining applies to combinational "
                 "designs)\n";
    return 1;
  }
  std::cout << g.num_gates() << " AIG nodes, depth " << g.depth() << "\n\n";

  table_printer t({"Stages (arch/circ)", "JJ", "LA/FA", "DROC (w/o / w)",
                   "Depth", "Depth+splt", "Circuit GHz", "Arch GHz",
                   "JJ/GHz"});
  for (unsigned k = 0; k <= max_stages; ++k) {
    mapping_params p;
    p.pipeline_stages = k;
    const auto m = map_to_xsfq(g, p);
    const auto& st = m.stats;
    t.add_row({std::to_string(k) + "/" + std::to_string(2 * k),
               std::to_string(st.jj),
               std::to_string(st.la_cells + st.fa_cells),
               std::to_string(st.drocs_plain) + "/" +
                   std::to_string(st.drocs_preload),
               std::to_string(st.depth),
               std::to_string(st.depth_with_splitters),
               table_printer::fixed(st.circuit_ghz, 2),
               table_printer::fixed(st.architectural_ghz, 2),
               table_printer::fixed(
                   static_cast<double>(st.jj) / st.architectural_ghz, 0)});
  }
  t.print(std::cout);
  std::cout << "\nEach architectural stage adds two DROC ranks (excite +\n"
            << "relax); JJ grows sublinearly while frequency scales, so the\n"
            << "JJ-per-GHz efficiency improves with pipelining (Sec. 4.2.2).\n";
  return 0;
}
