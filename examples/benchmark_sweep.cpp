/// Sweep every generated benchmark through the full flow and print a
/// one-line summary per circuit — the "whole paper at a glance" view.
///
///   $ ./benchmark_sweep [suite]    (iscas85 | epfl | iscas89 | all)
#include <cmath>
#include <iostream>

#include "baseline/rsfq.hpp"
#include "benchgen/registry.hpp"
#include "core/mapper.hpp"
#include "opt/script.hpp"
#include "util/table_printer.hpp"

using namespace xsfq;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  std::cout << "== Benchmark sweep (" << which << ") ==\n\n";

  table_printer t({"Circuit", "Suite", "PI/PO/FF", "AIG", "LA/FA", "Dupl",
                   "Splt", "DROC", "xSFQ JJ", "RSFQ JJ", "Savings"});
  double product = 1.0;
  int count = 0;
  for (const auto& entry : benchgen::all_benchmarks()) {
    const char* suite_name = entry.which_suite == benchgen::suite::iscas85
                                 ? "iscas85"
                                 : entry.which_suite == benchgen::suite::epfl
                                       ? "epfl"
                                       : "iscas89";
    if (which != "all" && which != suite_name) continue;
    if (entry.name == "voter" || entry.name == "sin") continue;  // slow
    const aig g = optimize(benchgen::make_benchmark(entry.name));
    mapping_params p;
    if (entry.sequential) p.reg_style = register_style::pair_retimed;
    const auto m = map_to_xsfq(g, p);
    const auto base = map_to_rsfq(g);
    const double savings = static_cast<double>(base.jj_without_clock) /
                           static_cast<double>(m.stats.jj);
    product *= savings;
    ++count;
    t.add_row({entry.name, suite_name,
               std::to_string(g.num_pis()) + "/" +
                   std::to_string(g.num_pos()) + "/" +
                   std::to_string(g.num_registers()),
               std::to_string(g.num_gates()),
               std::to_string(m.stats.la_cells + m.stats.fa_cells),
               table_printer::percent(m.stats.duplication),
               std::to_string(m.stats.splitters),
               std::to_string(m.stats.drocs_plain + m.stats.drocs_preload),
               std::to_string(m.stats.jj),
               std::to_string(base.jj_without_clock),
               table_printer::ratio(savings)});
  }
  t.print(std::cout);
  if (count > 0) {
    std::cout << "\nGeomean JJ savings over the clocked baseline: "
              << table_printer::ratio(std::pow(product, 1.0 / count))
              << " across " << count << " circuits (paper: >80% average JJ"
              << " reduction).\n";
  }
  return 0;
}
