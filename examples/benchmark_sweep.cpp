/// Sweep every generated benchmark through the full flow and print a
/// one-line summary per circuit — the "whole paper at a glance" view.
/// The suite runs concurrently on the flow batch_runner; per-circuit rows
/// and the geomean are aggregated in input order, so the output is
/// independent of the worker count.
///
///   $ ./benchmark_sweep [suite] [threads]   (iscas85 | epfl | iscas89 | all)
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "benchgen/registry.hpp"
#include "flow/batch_runner.hpp"
#include "util/table_printer.hpp"

using namespace xsfq;

namespace {

const char* suite_name(benchgen::suite s) {
  switch (s) {
    case benchgen::suite::iscas85: return "iscas85";
    case benchgen::suite::epfl: return "epfl";
    case benchgen::suite::iscas89: return "iscas89";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  unsigned threads = 0;  // 0 = hardware concurrency
  if (argc > 2) {
    const auto parsed = flow::parse_thread_count(argv[2]);
    if (!parsed) {
      std::cerr << "usage: " << argv[0] << " [suite] [threads]\n";
      return 2;
    }
    threads = *parsed;
  }
  std::cout << "== Benchmark sweep (" << which << ") ==\n\n";

  std::vector<benchgen::benchmark_entry> selected;
  std::vector<std::string> names;
  for (const auto& entry : benchgen::all_benchmarks()) {
    if (which != "all" && which != suite_name(entry.which_suite)) continue;
    if (entry.name == "voter" || entry.name == "sin") continue;  // slow
    selected.push_back(entry);
    names.push_back(entry.name);
  }

  // Explicit runner (rather than run_batch) so the work-stealing and
  // result-cache statistics can be reported below.
  flow::batch_runner runner(threads);
  const auto report = runner.run(names, flow::flow_options{});

  table_printer t({"Circuit", "Suite", "PI/PO/FF", "AIG", "LA/FA", "Dupl",
                   "Splt", "DROC", "xSFQ JJ", "RSFQ JJ", "Savings"});
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const auto& entry = report.entries[i];
    if (!entry.ok) {
      std::cerr << "flow failed for " << entry.name << ": " << entry.error
                << "\n";
      return 1;
    }
    const auto& r = entry.result;
    const aig& g = r.optimized;
    const auto& st = r.mapped.stats;
    const double savings = static_cast<double>(r.baseline.jj_without_clock) /
                           static_cast<double>(st.jj);
    t.add_row({entry.name, suite_name(selected[i].which_suite),
               std::to_string(g.num_pis()) + "/" +
                   std::to_string(g.num_pos()) + "/" +
                   std::to_string(g.num_registers()),
               std::to_string(g.num_gates()),
               std::to_string(st.la_cells + st.fa_cells),
               table_printer::percent(st.duplication),
               std::to_string(st.splitters),
               std::to_string(st.drocs_plain + st.drocs_preload),
               std::to_string(st.jj),
               std::to_string(r.baseline.jj_without_clock),
               table_printer::ratio(savings)});
  }
  t.print(std::cout);

  const auto summary = flow::summarize(report);
  if (summary.circuits > 0) {
    std::cout << "\nGeomean JJ savings over the clocked baseline: "
              << table_printer::ratio(summary.geomean_savings) << " across "
              << summary.circuits << " circuits (paper: >80% average JJ"
              << " reduction).\n"
              << report.threads << " worker threads ("
              << runner.steals() << " steals): "
              << static_cast<long>(report.flow_ms_sum) << " ms of flow time in "
              << static_cast<long>(report.wall_ms) << " ms wall clock.\n";
  }
  return 0;
}
